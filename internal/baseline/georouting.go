package baseline

import (
	"errors"
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/lp"
	"github.com/smartdpss/smartdpss/internal/trace"
)

// GeoSite describes one datacenter inside a coupled routing+supply
// solve: its supply-side configuration and traces, plus the routing
// constraints the front end applies to it — a per-slot cap on the
// delay-sensitive demand it may end up serving and a latency penalty
// charged per imported MWh.
type GeoSite struct {
	// Config is the site's supply-side configuration (markets, battery,
	// fleet), exactly as a standalone OfflineHorizon would consume it.
	Config Config
	// Set is the site's trace set; DemandDS is the site's home demand
	// before routing.
	Set *trace.Set
	// ImportPenaltyUSD is the cost in USD per MWh of demand moved to
	// this site, the LP's proxy for the latency of serving a request
	// away from its home region.
	ImportPenaltyUSD float64
	// RouteCapMWh caps the site's post-routing delay-sensitive demand
	// per slot. Zero means uncapped.
	RouteCapMWh float64
}

// GeoRoutingPlan is the solved joint plan's routing projection: the
// post-routing delay-sensitive demand per site per slot, and the moved
// energy totals. The supply-side decisions are deliberately not
// extracted — the geo runner replays the routed demand through each
// site's own controller, so the plan stays policy-agnostic.
type GeoRoutingPlan struct {
	// Objective is the joint LP optimum: total supply cost across all
	// sites plus the routing penalties.
	Objective float64
	// RoutedDS[s][i] is site s's delay-sensitive demand in slot i after
	// routing (home − exported + imported, clamped at zero).
	RoutedDS [][]float64
	// ImportMWh and ExportMWh are each site's total moved energy.
	ImportMWh []float64
	ExportMWh []float64
	// PenaltyUSD is the total routing penalty Σ_s penalty_s·import_s
	// included in Objective.
	PenaltyUSD float64
}

// SolveGeoHorizon solves the coupled routing+supply LP over the whole
// horizon: every site's staircase supply block (identical structure to
// the OfflineHorizon staircase form) plus, per site per slot, an export
// variable out ∈ [0, home] and a penalized import variable in ≥ 0 that
// shift the balance row's demand, a per-site routing-capacity row, and
// one per-slot conservation row Σout − Σin = 0 coupling the sites. With
// one site, or with penalties that exceed every price gap, the coupling
// is inactive and the optimum equals the sum of independent per-site
// horizon solves — the parity property the tests pin.
func SolveGeoHorizon(sites []GeoSite) (*GeoRoutingPlan, error) {
	if len(sites) == 0 {
		return nil, errors.New("baseline: geo solve needs at least one site")
	}
	for s := range sites {
		if err := sites[s].Config.Validate(); err != nil {
			return nil, fmt.Errorf("baseline: geo site %d: %w", s, err)
		}
		if err := sites[s].Set.Validate(); err != nil {
			return nil, fmt.Errorf("baseline: geo site %d: %w", s, err)
		}
		if sites[s].ImportPenaltyUSD < 0 {
			return nil, fmt.Errorf("baseline: geo site %d: negative ImportPenaltyUSD", s)
		}
		if sites[s].RouteCapMWh < 0 {
			return nil, fmt.Errorf("baseline: geo site %d: negative RouteCapMWh", s)
		}
	}
	H := sites[0].Set.Horizon()
	slotMinutes := sites[0].Set.DemandDS.SlotMinutes
	for s := 1; s < len(sites); s++ {
		if sites[s].Set.Horizon() != H {
			return nil, fmt.Errorf("baseline: geo site %d has horizon %d, want %d",
				s, sites[s].Set.Horizon(), H)
		}
		if sites[s].Set.DemandDS.SlotMinutes != slotMinutes {
			return nil, fmt.Errorf("baseline: geo site %d has %d-minute slots, want %d",
				s, sites[s].Set.DemandDS.SlotMinutes, slotMinutes)
		}
	}

	var st lpState
	st.sparse = true
	prob := st.problem()
	// The joint LP is len(sites)× the single-site staircase; give it the
	// same generous pivot budget the dense chain formulation uses.
	prob.SetMaxIterations(200000)
	defer prob.SetMaxIterations(0)

	nS := len(sites)
	outV := make([][]lp.VarID, nS)
	inV := make([][]lp.VarID, nS)
	for s := range sites {
		outV[s], inV[s] = addGeoSiteBlock(prob, &st, &sites[s], H)
	}

	// Per-slot conservation: demand leaves one site only by arriving at
	// another in the same slot.
	for i := 0; i < H; i++ {
		terms := st.terms[:0]
		for s := 0; s < nS; s++ {
			terms = append(terms,
				lp.Term{Var: outV[s][i], Coeff: 1},
				lp.Term{Var: inV[s][i], Coeff: -1},
			)
		}
		st.terms = terms
		prob.AddConstraint(lp.EQ, 0, terms...)
	}

	sol, err := st.solve(prob)
	if err != nil {
		return nil, fmt.Errorf("baseline: geo LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("baseline: geo LP: %v", sol.Status)
	}

	plan := &GeoRoutingPlan{
		Objective: sol.Objective,
		RoutedDS:  make([][]float64, nS),
		ImportMWh: make([]float64, nS),
		ExportMWh: make([]float64, nS),
	}
	for s := range sites {
		routed := make([]float64, H)
		for i := 0; i < H; i++ {
			in := sol.Value(inV[s][i])
			out := sol.Value(outV[s][i])
			plan.ImportMWh[s] += in
			plan.ExportMWh[s] += out
			v := sites[s].Set.DemandDS.At(i) - out + in
			if v < 0 {
				v = 0
			}
			routed[i] = v
		}
		plan.RoutedDS[s] = routed
		plan.PenaltyUSD += sites[s].ImportPenaltyUSD * plan.ImportMWh[s]
	}
	return plan, nil
}

// addGeoSiteBlock appends one site's staircase supply block to the
// joint problem — the same variables and rows as the OfflineHorizon
// staircase formulation — plus the per-slot routing pair (out, in)
// wired into the balance row and the optional routing-capacity row. It
// returns the routing variable ids; the supply ids stay internal since
// the plan only extracts routing.
func addGeoSiteBlock(prob *lp.Problem, st *lpState, site *GeoSite, H int) (outV, inV []lp.VarID) {
	cfg, set := site.Config, site.Set
	bat := cfg.Battery
	inf := math.Inf(1)
	T := cfg.T
	K := (H + T - 1) / T

	gbef := make([]lp.VarID, K)
	intervalLen := make([]int, K)
	for k := 0; k < K; k++ {
		n := minInt(T, H-k*T)
		intervalLen[k] = n
		plt := set.PriceLT.At(k * T)
		gbef[k] = prob.AddVariable("gbef", 0, float64(n)*cfg.PgridMWh, plt)
	}

	grt := make([]lp.VarID, H)
	u := make([]lp.VarID, H)
	c := make([]lp.VarID, H)
	d := make([]lp.VarID, H)
	w := make([]lp.VarID, H)
	e := make([]lp.VarID, H)
	bl := make([]lp.VarID, H) // battery level after slot i
	us := make([]lp.VarID, H) // cumulative served through slot i
	outV = make([]lp.VarID, H)
	inV = make([]lp.VarID, H)
	units := cfg.genUnits()
	var g [][][]lp.VarID
	if len(units) > 0 {
		g = make([][][]lp.VarID, H)
	}
	proxy := 0.0
	if bat.MaxChargeMWh > 0 {
		proxy = bat.OpCostUSD / math.Max(bat.MaxChargeMWh, bat.MaxDischargeMWh)
	}
	avail := 0.0
	for i := 0; i < H; i++ {
		prt := set.PriceRT.At(i)
		grt[i] = prob.AddVariable("", 0, cfg.PgridMWh, prt)
		u[i] = prob.AddVariable("", 0, cfg.SdtMaxMWh, 0)
		c[i] = prob.AddVariable("", 0, bat.MaxChargeMWh, proxy)
		d[i] = prob.AddVariable("", 0, bat.MaxDischargeMWh, proxy)
		w[i] = prob.AddVariable("", 0, inf, cfg.WasteCostUSD)
		e[i] = prob.AddVariable("", 0, inf, cfg.EmergencyCostUSD)
		if g != nil {
			g[i] = addFleetVars(prob, units, i, T, set.FuelScaleAt(i))
		}
		avail += set.DemandDT.At(i)
		bl[i] = prob.AddVariable("B", bat.MinLevelMWh, bat.CapacityMWh, 0)
		us[i] = prob.AddVariable("U", 0, avail, 0)
		outV[i] = prob.AddVariable("out", 0, set.DemandDS.At(i), 0)
		inV[i] = prob.AddVariable("in", 0, inf, site.ImportPenaltyUSD)
	}

	b0 := bat.InitialMWh
	for i := 0; i < H; i++ {
		k := i / T
		invN := 1.0 / float64(intervalLen[k])
		dds := set.DemandDS.At(i)
		r := set.Renewable.At(i)

		// Supply balance against the post-routing demand dds − out + in:
		// moving out and in to the left keeps the staircase RHS.
		balance := append(st.terms[:0],
			lp.Term{Var: gbef[k], Coeff: invN},
			lp.Term{Var: grt[i], Coeff: 1},
			lp.Term{Var: d[i], Coeff: 1},
			lp.Term{Var: e[i], Coeff: 1},
			lp.Term{Var: u[i], Coeff: -1},
			lp.Term{Var: c[i], Coeff: -1},
			lp.Term{Var: w[i], Coeff: -1},
			lp.Term{Var: outV[i], Coeff: 1},
			lp.Term{Var: inV[i], Coeff: -1},
		)
		if g != nil {
			balance = appendFleetTerms(balance, g[i])
		}
		st.terms = balance
		prob.AddConstraint(lp.EQ, dds-r, balance...)
		prob.AddConstraint(lp.LE, cfg.PgridMWh,
			lp.Term{Var: gbef[k], Coeff: invN},
			lp.Term{Var: grt[i], Coeff: 1},
		)
		smax := append(st.terms[:0],
			lp.Term{Var: gbef[k], Coeff: invN},
			lp.Term{Var: grt[i], Coeff: 1},
		)
		if g != nil {
			smax = appendFleetTerms(smax, g[i])
		}
		st.terms = smax
		prob.AddConstraint(lp.LE, cfg.SmaxMWh-r, smax...)

		// Routing capacity: post-routing demand home − out + in may not
		// exceed the site's serving capacity, i.e. in − out ≤ cap − home.
		if site.RouteCapMWh > 0 {
			prob.AddConstraint(lp.LE, site.RouteCapMWh-dds,
				lp.Term{Var: inV[i], Coeff: 1},
				lp.Term{Var: outV[i], Coeff: -1},
			)
		}

		// Battery state transition, identical to the staircase form.
		if i == 0 {
			prob.AddConstraint(lp.EQ, b0,
				lp.Term{Var: bl[0], Coeff: 1},
				lp.Term{Var: c[0], Coeff: -bat.ChargeEff},
				lp.Term{Var: d[0], Coeff: bat.DischargeEff},
			)
		} else {
			prob.AddConstraint(lp.EQ, 0,
				lp.Term{Var: bl[i], Coeff: 1},
				lp.Term{Var: bl[i-1], Coeff: -1},
				lp.Term{Var: c[i], Coeff: -bat.ChargeEff},
				lp.Term{Var: d[i], Coeff: bat.DischargeEff},
			)
		}

		// Served accumulator, identical to the staircase form.
		if i == 0 {
			prob.AddConstraint(lp.EQ, 0,
				lp.Term{Var: us[0], Coeff: 1},
				lp.Term{Var: u[0], Coeff: -1},
			)
		} else {
			prob.AddConstraint(lp.EQ, 0,
				lp.Term{Var: us[i], Coeff: 1},
				lp.Term{Var: us[i-1], Coeff: -1},
				lp.Term{Var: u[i], Coeff: -1},
			)
		}
	}

	// Per-interval delay-tolerant deadlines, identical to the staircase
	// form; delay-tolerant demand never routes.
	arrived := 0.0
	for k := 0; k < K; k++ {
		end := k*T + intervalLen[k]
		for i := k * T; i < end; i++ {
			arrived += set.DemandDT.At(i)
		}
		slack := prob.AddVariable("slack", 0, inf, cfg.EmergencyCostUSD)
		prob.AddConstraint(lp.GE, arrived,
			lp.Term{Var: us[end-1], Coeff: 1},
			lp.Term{Var: slack, Coeff: 1},
		)
	}

	return outV, inV
}
