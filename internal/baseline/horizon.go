package baseline

import (
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/lp"
	"github.com/smartdpss/smartdpss/internal/sim"
	"github.com/smartdpss/smartdpss/internal/trace"
)

// OfflineHorizon is the fully clairvoyant benchmark: one linear program
// spanning the entire horizon, with a long-term purchase variable per
// coarse interval and cross-interval battery planning. It lower-bounds
// the per-interval OfflineOptimal. By default it solves the staircase
// state-variable formulation on the sparse revised simplex, which keeps
// the constraint matrix linear in the horizon and reaches annual (8760
// slot) studies; Config.HorizonDense selects the legacy dense chain
// formulation, which reaches the same objective but is quadratic in the
// horizon.
type OfflineHorizon struct {
	cfg Config
	set *trace.Set
	st  lpState

	gbef []float64      // per coarse interval
	plan []sim.Decision // per fine slot
}

var _ sim.Controller = (*OfflineHorizon)(nil)

// NewOfflineHorizon solves the horizon LP eagerly and returns the
// replaying controller.
func NewOfflineHorizon(cfg Config, set *trace.Set) (*OfflineHorizon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	o := &OfflineHorizon{cfg: cfg, set: set}
	if err := o.solve(); err != nil {
		return nil, err
	}
	return o, nil
}

// Name implements sim.Controller.
func (o *OfflineHorizon) Name() string { return "OfflineHorizon" }

// CoarseSlots implements sim.Controller.
func (o *OfflineHorizon) CoarseSlots() int { return o.cfg.T }

// PlanCoarse replays the precomputed interval purchase.
func (o *OfflineHorizon) PlanCoarse(obs sim.CoarseObs) float64 {
	if obs.Interval < 0 || obs.Interval >= len(o.gbef) {
		return 0
	}
	return o.gbef[obs.Interval]
}

// PlanFine replays the precomputed slot decision. The returned Decision's
// GenerateUnits borrows a controller-owned buffer valid until the next
// PlanFine call.
func (o *OfflineHorizon) PlanFine(obs sim.FineObs) sim.Decision {
	if obs.Slot < 0 || obs.Slot >= len(o.plan) {
		return sim.Decision{}
	}
	dec := o.plan[obs.Slot]
	dec.ServeDT = math.Min(dec.ServeDT, math.Min(obs.Backlog, obs.SdtMax))
	dec.Charge = math.Min(dec.Charge, obs.MaxCharge)
	dec.Discharge = math.Min(dec.Discharge, obs.MaxDischarge)
	dec.GenerateUnits = o.st.clampPlan(dec.GenerateUnits, obs.GenUnits)
	return dec
}

// RecordOutcome implements sim.Controller; the plan is precomputed.
func (o *OfflineHorizon) RecordOutcome(sim.Outcome) {}

// solve dispatches to the staircase sparse formulation (default) or the
// legacy dense chain formulation (Config.HorizonDense). Both optimize
// the identical objective over the identical feasible set; only the
// constraint-matrix encoding — and therefore the solver path and,
// possibly, the reported vertex among alternate optima — differs.
func (o *OfflineHorizon) solve() error {
	if o.cfg.HorizonDense {
		return o.solveChain()
	}
	return o.solveStair()
}

// solveStair builds the whole-horizon LP in staircase state-variable
// form: explicit battery-level variables B_i and cumulative-served
// variables U_i turn the chain formulation's O(H²) prefix rows into one
// equality and two column bounds per slot, so the matrix has O(1)
// nonzeros per row and the sparse revised simplex solves it at annual
// scale. The objective is an exact substitution of the chain form
// (B_i = b0 + Σ ηc·c_j − ηd·d_j, U_i = Σ u_j), so the optimal value is
// identical; the reported vertex may be a different, equally optimal one.
func (o *OfflineHorizon) solveStair() error {
	cfg, set := o.cfg, o.set
	st := &o.st
	bat := cfg.Battery
	inf := math.Inf(1)
	H := set.Horizon()
	T := cfg.T
	K := (H + T - 1) / T

	st.sparse = true
	defer func() { st.sparse = false }()
	prob := st.problem()

	gbef := make([]lp.VarID, K)
	intervalLen := make([]int, K)
	for k := 0; k < K; k++ {
		n := minInt(T, H-k*T)
		intervalLen[k] = n
		plt := set.PriceLT.At(k * T)
		gbef[k] = prob.AddVariable("gbef", 0, float64(n)*cfg.PgridMWh, plt)
	}

	grt, u, c, d, w, e := st.varIDs(H)
	bl := make([]lp.VarID, H) // battery level after slot i
	us := make([]lp.VarID, H) // cumulative served through slot i
	units := cfg.genUnits()
	var g [][][]lp.VarID
	if len(units) > 0 {
		g = make([][][]lp.VarID, H)
	}
	proxy := 0.0
	if bat.MaxChargeMWh > 0 {
		proxy = bat.OpCostUSD / math.Max(bat.MaxChargeMWh, bat.MaxDischargeMWh)
	}
	avail := 0.0
	for i := 0; i < H; i++ {
		prt := set.PriceRT.At(i)
		grt[i] = prob.AddVariable("", 0, cfg.PgridMWh, prt)
		u[i] = prob.AddVariable("", 0, cfg.SdtMaxMWh, 0)
		c[i] = prob.AddVariable("", 0, bat.MaxChargeMWh, proxy)
		d[i] = prob.AddVariable("", 0, bat.MaxDischargeMWh, proxy)
		w[i] = prob.AddVariable("", 0, inf, cfg.WasteCostUSD)
		e[i] = prob.AddVariable("", 0, inf, cfg.EmergencyCostUSD)
		if g != nil {
			g[i] = addFleetVars(prob, units, i, T, set.FuelScaleAt(i))
		}
		avail += set.DemandDT.At(i)
		bl[i] = prob.AddVariable("B", bat.MinLevelMWh, bat.CapacityMWh, 0)
		us[i] = prob.AddVariable("U", 0, avail, 0)
	}

	b0 := bat.InitialMWh
	for i := 0; i < H; i++ {
		k := i / T
		invN := 1.0 / float64(intervalLen[k])
		dds := set.DemandDS.At(i)
		r := set.Renewable.At(i)

		balance := append(st.terms[:0],
			lp.Term{Var: gbef[k], Coeff: invN},
			lp.Term{Var: grt[i], Coeff: 1},
			lp.Term{Var: d[i], Coeff: 1},
			lp.Term{Var: e[i], Coeff: 1},
			lp.Term{Var: u[i], Coeff: -1},
			lp.Term{Var: c[i], Coeff: -1},
			lp.Term{Var: w[i], Coeff: -1},
		)
		if g != nil {
			balance = appendFleetTerms(balance, g[i])
		}
		st.terms = balance
		prob.AddConstraint(lp.EQ, dds-r, balance...)
		prob.AddConstraint(lp.LE, cfg.PgridMWh,
			lp.Term{Var: gbef[k], Coeff: invN},
			lp.Term{Var: grt[i], Coeff: 1},
		)
		smax := append(st.terms[:0],
			lp.Term{Var: gbef[k], Coeff: invN},
			lp.Term{Var: grt[i], Coeff: 1},
		)
		if g != nil {
			smax = appendFleetTerms(smax, g[i])
		}
		st.terms = smax
		prob.AddConstraint(lp.LE, cfg.SmaxMWh-r, smax...)

		// Battery state transition: B_i − B_{i−1} = ηc·c_i − ηd·d_i,
		// with the initial level folded into slot 0's right-hand side.
		// The chain form's level-window rows become B_i's bounds.
		if i == 0 {
			prob.AddConstraint(lp.EQ, b0,
				lp.Term{Var: bl[0], Coeff: 1},
				lp.Term{Var: c[0], Coeff: -bat.ChargeEff},
				lp.Term{Var: d[0], Coeff: bat.DischargeEff},
			)
		} else {
			prob.AddConstraint(lp.EQ, 0,
				lp.Term{Var: bl[i], Coeff: 1},
				lp.Term{Var: bl[i-1], Coeff: -1},
				lp.Term{Var: c[i], Coeff: -bat.ChargeEff},
				lp.Term{Var: d[i], Coeff: bat.DischargeEff},
			)
		}

		// Served accumulator: U_i − U_{i−1} = u_i; service causality
		// (U_i ≤ arrivals through slot i) is U_i's upper bound.
		if i == 0 {
			prob.AddConstraint(lp.EQ, 0,
				lp.Term{Var: us[0], Coeff: 1},
				lp.Term{Var: u[0], Coeff: -1},
			)
		} else {
			prob.AddConstraint(lp.EQ, 0,
				lp.Term{Var: us[i], Coeff: 1},
				lp.Term{Var: us[i-1], Coeff: -1},
				lp.Term{Var: u[i], Coeff: -1},
			)
		}
	}

	// Per-interval deadlines against the cumulative-served variable,
	// with a penalized slack each — two nonzeros per row instead of the
	// chain form's end-index-long prefix.
	arrived := 0.0
	for k := 0; k < K; k++ {
		end := k*T + intervalLen[k]
		for i := k * T; i < end; i++ {
			arrived += set.DemandDT.At(i)
		}
		slack := prob.AddVariable("slack", 0, inf, cfg.EmergencyCostUSD)
		prob.AddConstraint(lp.GE, arrived,
			lp.Term{Var: us[end-1], Coeff: 1},
			lp.Term{Var: slack, Coeff: 1},
		)
	}

	sol, err := st.solve(prob)
	if err != nil {
		return fmt.Errorf("baseline: horizon LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return fmt.Errorf("baseline: horizon LP: %v", sol.Status)
	}

	o.gbef = make([]float64, K)
	for k := 0; k < K; k++ {
		o.gbef[k] = sol.Value(gbef[k])
	}
	o.plan = make([]sim.Decision, H)
	for i := 0; i < H; i++ {
		dec := sim.Decision{
			Grt:       sol.Value(grt[i]),
			ServeDT:   sol.Value(u[i]),
			Charge:    sol.Value(c[i]),
			Discharge: sol.Value(d[i]),
		}
		if g != nil {
			dec.GenerateUnits = genPlanUnits(&sol, g[i])
		}
		netPlanChargeDischarge(&dec, bat.ChargeEff, bat.DischargeEff)
		o.plan[i] = dec
	}
	return nil
}

// solveChain builds and solves the legacy dense chain formulation. The
// structure matches solveInterval, with one gbef per coarse interval,
// battery dynamics and service causality chained across the whole
// horizon as j ≤ i prefix rows, and the same "served by interval end"
// deadline so the two offline benchmarks differ only in cross-interval
// planning.
func (o *OfflineHorizon) solveChain() error {
	cfg, set := o.cfg, o.set
	st := &o.st
	bat := cfg.Battery
	inf := math.Inf(1)
	H := set.Horizon()
	T := cfg.T
	K := (H + T - 1) / T

	prob := st.problem()
	// Large horizon LPs need a generous pivot budget.
	prob.SetMaxIterations(200000)
	defer prob.SetMaxIterations(0)

	gbef := make([]lp.VarID, K)
	intervalLen := make([]int, K)
	for k := 0; k < K; k++ {
		n := minInt(T, H-k*T)
		intervalLen[k] = n
		plt := set.PriceLT.At(k * T)
		gbef[k] = prob.AddVariable("gbef", 0, float64(n)*cfg.PgridMWh, plt)
	}

	grt, u, c, d, w, e := st.varIDs(H)
	units := cfg.genUnits()
	var g [][][]lp.VarID
	if len(units) > 0 {
		g = make([][][]lp.VarID, H)
	}
	proxy := 0.0
	if bat.MaxChargeMWh > 0 {
		proxy = bat.OpCostUSD / math.Max(bat.MaxChargeMWh, bat.MaxDischargeMWh)
	}
	for i := 0; i < H; i++ {
		prt := set.PriceRT.At(i)
		grt[i] = prob.AddVariable("", 0, cfg.PgridMWh, prt)
		u[i] = prob.AddVariable("", 0, cfg.SdtMaxMWh, 0)
		c[i] = prob.AddVariable("", 0, bat.MaxChargeMWh, proxy)
		d[i] = prob.AddVariable("", 0, bat.MaxDischargeMWh, proxy)
		w[i] = prob.AddVariable("", 0, inf, cfg.WasteCostUSD)
		e[i] = prob.AddVariable("", 0, inf, cfg.EmergencyCostUSD)
		if g != nil {
			g[i] = addFleetVars(prob, units, i, T, set.FuelScaleAt(i))
		}
	}

	b0 := bat.InitialMWh
	chain := st.chain[:0]
	serve := st.serve[:0]
	avail := 0.0
	for i := 0; i < H; i++ {
		k := i / T
		invN := 1.0 / float64(intervalLen[k])
		dds := set.DemandDS.At(i)
		r := set.Renewable.At(i)

		balance := append(st.terms[:0],
			lp.Term{Var: gbef[k], Coeff: invN},
			lp.Term{Var: grt[i], Coeff: 1},
			lp.Term{Var: d[i], Coeff: 1},
			lp.Term{Var: e[i], Coeff: 1},
			lp.Term{Var: u[i], Coeff: -1},
			lp.Term{Var: c[i], Coeff: -1},
			lp.Term{Var: w[i], Coeff: -1},
		)
		if g != nil {
			balance = appendFleetTerms(balance, g[i])
		}
		st.terms = balance
		prob.AddConstraint(lp.EQ, dds-r, balance...)
		prob.AddConstraint(lp.LE, cfg.PgridMWh,
			lp.Term{Var: gbef[k], Coeff: invN},
			lp.Term{Var: grt[i], Coeff: 1},
		)
		smax := append(st.terms[:0],
			lp.Term{Var: gbef[k], Coeff: invN},
			lp.Term{Var: grt[i], Coeff: 1},
		)
		if g != nil {
			smax = appendFleetTerms(smax, g[i])
		}
		st.terms = smax
		prob.AddConstraint(lp.LE, cfg.SmaxMWh-r, smax...)

		// Battery level and service causality share the incrementally
		// grown j ≤ i prefixes (same term order and accumulation as the
		// historical per-constraint rebuild).
		chain = append(chain,
			lp.Term{Var: c[i], Coeff: bat.ChargeEff},
			lp.Term{Var: d[i], Coeff: -bat.DischargeEff},
		)
		prob.AddConstraint(lp.GE, bat.MinLevelMWh-b0, chain...)
		prob.AddConstraint(lp.LE, bat.CapacityMWh-b0, chain...)

		avail += set.DemandDT.At(i)
		serve = append(serve, lp.Term{Var: u[i], Coeff: 1})
		prob.AddConstraint(lp.LE, avail, serve...)
	}
	st.chain, st.serve = chain, serve

	// Per-interval deadlines with a penalized slack each.
	arrived := 0.0
	for k := 0; k < K; k++ {
		end := k*T + intervalLen[k]
		for i := k * T; i < end; i++ {
			arrived += set.DemandDT.At(i)
		}
		slack := prob.AddVariable("slack", 0, inf, cfg.EmergencyCostUSD)
		terms := append(st.terms[:0], serve[:end]...)
		terms = append(terms, lp.Term{Var: slack, Coeff: 1})
		st.terms = terms
		prob.AddConstraint(lp.GE, arrived, terms...)
	}

	sol, err := st.solve(prob)
	if err != nil {
		return fmt.Errorf("baseline: horizon LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return fmt.Errorf("baseline: horizon LP: %v", sol.Status)
	}

	o.gbef = make([]float64, K)
	for k := 0; k < K; k++ {
		o.gbef[k] = sol.Value(gbef[k])
	}
	o.plan = make([]sim.Decision, H)
	for i := 0; i < H; i++ {
		dec := sim.Decision{
			Grt:       sol.Value(grt[i]),
			ServeDT:   sol.Value(u[i]),
			Charge:    sol.Value(c[i]),
			Discharge: sol.Value(d[i]),
		}
		if g != nil {
			dec.GenerateUnits = genPlanUnits(&sol, g[i])
		}
		netPlanChargeDischarge(&dec, bat.ChargeEff, bat.DischargeEff)
		o.plan[i] = dec
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
