package baseline

import (
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/lp"
	"github.com/smartdpss/smartdpss/internal/sim"
	"github.com/smartdpss/smartdpss/internal/trace"
)

// OfflineOptimal is the paper's clairvoyant benchmark (Sec. II-D): at each
// coarse boundary it solves one linear program over the upcoming interval
// with full knowledge of demand, renewable production and prices, then
// replays the per-slot plan. Battery state and any unserved backlog carry
// across intervals; every interval must serve its arrivals (plus inherited
// backlog) by its end, mirroring the single-interval scope of problem P2.
//
// Consecutive interval LPs share one shape (T slots, the same constraint
// pattern), so the controller's solver reuses every model and tableau
// buffer across intervals and the whole sequence solves allocation-free
// after the first interval. The solves themselves run the exact cold
// row-formulation pivot sequence — not basis warm-starts, and not the
// bounded-variable simplex — so each interval reproduces the historical
// optimal vertex bit for bit: these interval LPs are degenerate (serving
// the backlog earlier or later can be cost-neutral), the golden paper
// figures pin this controller's replayed schedule byte for byte, and a
// different-but-equally-optimal vertex would shift the reported delay
// (see lpState and the lp package documentation).
type OfflineOptimal struct {
	cfg Config
	set *trace.Set
	st  lpState

	// plan for the current interval, indexed by slot offset
	plan      []sim.Decision
	planStart int
}

var _ sim.Controller = (*OfflineOptimal)(nil)

// NewOfflineOptimal returns the per-interval clairvoyant benchmark over
// the given (already validated) trace set.
func NewOfflineOptimal(cfg Config, set *trace.Set) (*OfflineOptimal, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	o := &OfflineOptimal{cfg: cfg, set: set}
	// Golden-pinned vertex: keep the row-per-bound formulation (see the
	// type comment).
	o.st.rowBounds = true
	return o, nil
}

// Name implements sim.Controller.
func (o *OfflineOptimal) Name() string { return "OfflineOptimal" }

// CoarseSlots implements sim.Controller.
func (o *OfflineOptimal) CoarseSlots() int { return o.cfg.T }

// PlanCoarse solves the interval LP and returns its long-term purchase.
func (o *OfflineOptimal) PlanCoarse(obs sim.CoarseObs) float64 {
	gbef, plan, err := o.st.solveInterval(o.cfg, o.set, obs.Slot, obs.Slots, obs.Battery, obs.Backlog)
	if err != nil {
		// A solver failure leaves a defensive empty plan; the engine's
		// passive UPS and the emergency accounting absorb the slots.
		o.plan = o.st.decisions(obs.Slots)
		o.planStart = obs.Slot
		return 0
	}
	o.plan = plan
	o.planStart = obs.Slot
	return gbef
}

// PlanFine replays the solved plan. The returned Decision's GenerateUnits
// borrows a controller-owned buffer valid until the next PlanFine call.
func (o *OfflineOptimal) PlanFine(obs sim.FineObs) sim.Decision {
	idx := obs.Slot - o.planStart
	if idx < 0 || idx >= len(o.plan) {
		return sim.Decision{}
	}
	dec := o.plan[idx]
	// Guard against drift between the planned and actual backlog, and
	// clamp the relaxed per-unit fleet plan to the units' admissible
	// requests (the engine enforces min-load and startup physics on
	// execution).
	dec.ServeDT = math.Min(dec.ServeDT, math.Min(obs.Backlog, obs.SdtMax))
	dec.Charge = math.Min(dec.Charge, obs.MaxCharge)
	dec.Discharge = math.Min(dec.Discharge, obs.MaxDischarge)
	dec.GenerateUnits = o.st.clampPlan(dec.GenerateUnits, obs.GenUnits)
	return dec
}

// RecordOutcome implements sim.Controller; the plan is precomputed.
func (o *OfflineOptimal) RecordOutcome(sim.Outcome) {}

// solveInterval builds and solves the clairvoyant LP for slots
// [start, start+n), returning the long-term purchase and per-slot plan
// (the plan borrows st's buffer and is valid until the next solve).
//
// Variables per slot i: grt_i, u_i (backlog service), c_i (charge),
// d_i (discharge), w_i (waste), e_i (emergency); plus one gbef.
// By Lemma 1 grt is essentially unused at the optimum, but keeping it
// preserves feasibility when the flat gbef/T delivery cannot track peaky
// intra-interval demand.
func (st *lpState) solveInterval(cfg Config, set *trace.Set, start, n int, b0, q0 float64) (float64, []sim.Decision, error) {
	prob := st.problem()
	bat := cfg.Battery
	inf := math.Inf(1)

	// gbef is paid at plt per MWh and delivered evenly (Cost(τ) sums
	// gbef/T·plt across the interval, totalling gbef·plt).
	plt := set.PriceLT.At(start)
	gbef := prob.AddVariable("gbef", 0, float64(n)*cfg.PgridMWh, plt)

	grt, u, c, d, w, e := st.varIDs(n)
	units := cfg.genUnits()
	var g [][][]lp.VarID
	if len(units) > 0 {
		g = make([][][]lp.VarID, n)
	}

	// The linear battery-operation proxy (see package docs).
	proxy := 0.0
	if bat.MaxChargeMWh > 0 {
		proxy = bat.OpCostUSD / math.Max(bat.MaxChargeMWh, bat.MaxDischargeMWh)
	}

	totalArrivals := q0
	for i := 0; i < n; i++ {
		slot := start + i
		prt := set.PriceRT.At(slot)
		grt[i] = prob.AddVariable("", 0, cfg.PgridMWh, prt)
		u[i] = prob.AddVariable("", 0, cfg.SdtMaxMWh, 0)
		c[i] = prob.AddVariable("", 0, bat.MaxChargeMWh, proxy)
		d[i] = prob.AddVariable("", 0, bat.MaxDischargeMWh, proxy)
		w[i] = prob.AddVariable("", 0, inf, cfg.WasteCostUSD)
		e[i] = prob.AddVariable("", 0, inf, cfg.EmergencyCostUSD)
		if g != nil {
			g[i] = addFleetVars(prob, units, i, n, set.FuelScaleAt(slot))
		}
		totalArrivals += set.DemandDT.At(slot)
	}

	invN := 1.0 / float64(n)
	chain := st.chain[:0]
	serve := st.serve[:0]
	avail := q0
	for i := 0; i < n; i++ {
		slot := start + i
		dds := set.DemandDS.At(slot)
		r := set.Renewable.At(slot)

		// Balance: gbef/n + r + grt + d + g + e = dds + u + c + w.
		balance := append(st.terms[:0],
			lp.Term{Var: gbef, Coeff: invN},
			lp.Term{Var: grt[i], Coeff: 1},
			lp.Term{Var: d[i], Coeff: 1},
			lp.Term{Var: e[i], Coeff: 1},
			lp.Term{Var: u[i], Coeff: -1},
			lp.Term{Var: c[i], Coeff: -1},
			lp.Term{Var: w[i], Coeff: -1},
		)
		if g != nil {
			balance = appendFleetTerms(balance, g[i])
		}
		st.terms = balance
		prob.AddConstraint(lp.EQ, dds-r, balance...)

		// Grid cap: gbef/n + grt_i ≤ Pgrid.
		prob.AddConstraint(lp.LE, cfg.PgridMWh,
			lp.Term{Var: gbef, Coeff: invN},
			lp.Term{Var: grt[i], Coeff: 1},
		)
		// Supply cap: gbef/n + grt_i + r_i + Σg_i ≤ Smax.
		smax := append(st.terms[:0],
			lp.Term{Var: gbef, Coeff: invN},
			lp.Term{Var: grt[i], Coeff: 1},
		)
		if g != nil {
			smax = appendFleetTerms(smax, g[i])
		}
		st.terms = smax
		prob.AddConstraint(lp.LE, cfg.SmaxMWh-r, smax...)

		// Battery level bounds: Bmin ≤ b0 + Σ(ηc·c − ηd·d) ≤ Bmax. The
		// prefix terms grow incrementally — constraint i shares the
		// j ≤ i chain with every earlier slot.
		chain = append(chain,
			lp.Term{Var: c[i], Coeff: bat.ChargeEff},
			lp.Term{Var: d[i], Coeff: -bat.DischargeEff},
		)
		prob.AddConstraint(lp.GE, bat.MinLevelMWh-b0, chain...)
		prob.AddConstraint(lp.LE, bat.CapacityMWh-b0, chain...)

		// Service causality: Σ_{j≤i} u_j ≤ q0 + Σ_{j≤i} ddt_j. The
		// right-hand side is the same left-to-right accumulation the
		// per-constraint rebuild produced, so the coefficients are
		// bit-identical.
		avail += set.DemandDT.At(slot)
		serve = append(serve, lp.Term{Var: u[i], Coeff: 1})
		prob.AddConstraint(lp.LE, avail, serve...)
	}
	st.chain, st.serve = chain, serve

	// Interval deadline: everything arrived must be served by the end,
	// with a heavily penalized slack for physically infeasible intervals.
	slack := prob.AddVariable("slack", 0, inf, cfg.EmergencyCostUSD)
	endTerms := append(st.terms[:0], serve...)
	endTerms = append(endTerms, lp.Term{Var: slack, Coeff: 1})
	st.terms = endTerms
	prob.AddConstraint(lp.EQ, totalArrivals, endTerms...)

	sol, err := st.solve(prob)
	if err != nil {
		return 0, nil, fmt.Errorf("baseline: interval LP at %d: %w", start, err)
	}
	if sol.Status != lp.Optimal {
		return 0, nil, fmt.Errorf("baseline: interval LP at %d: %v", start, sol.Status)
	}

	plan := st.decisions(n)
	for i := 0; i < n; i++ {
		plan[i] = sim.Decision{
			Grt:       sol.Value(grt[i]),
			ServeDT:   sol.Value(u[i]),
			Charge:    sol.Value(c[i]),
			Discharge: sol.Value(d[i]),
		}
		if g != nil {
			plan[i].GenerateUnits = genPlanUnits(&sol, g[i])
		}
		netPlanChargeDischarge(&plan[i], bat.ChargeEff, bat.DischargeEff)
	}
	return sol.Value(gbef), plan, nil
}

// netPlanChargeDischarge replaces a simultaneous charge+discharge by the
// pure action with the same stored-energy effect ηc·brc − ηd·bdc. The LP
// can otherwise "pump" the battery (charge and discharge in one slot) to
// burn surplus energy for less than the waste price; the executed schedule
// must satisfy brc(τ)·bdc(τ) ≡ 0 and keep the planned battery trajectory,
// so the conversion goes through the stored-energy delta and the engine's
// balance residual absorbs the freed energy as waste.
func netPlanChargeDischarge(dec *sim.Decision, etaC, etaD float64) {
	if dec.Charge <= 1e-12 || dec.Discharge <= 1e-12 {
		return
	}
	delta := etaC*dec.Charge - etaD*dec.Discharge
	if delta >= 0 {
		dec.Charge = delta / etaC
		dec.Discharge = 0
	} else {
		dec.Discharge = -delta / etaD
		dec.Charge = 0
	}
}
