package baseline

import (
	"math"
	"testing"

	"github.com/smartdpss/smartdpss/internal/trace"
)

// geoTestSets builds n per-site trace sets from the shared generator
// defaults, spreading the grid prices multiplicatively so the sites have
// something to arbitrage. scale[i] multiplies site i's PriceLT/PriceRT.
func geoTestSets(t *testing.T, days int, scale []float64) []*trace.Set {
	t.Helper()
	sets := make([]*trace.Set, len(scale))
	for i, k := range scale {
		set := testTraces(t, days)
		set.PriceLT.Scale(k)
		set.PriceRT.Scale(k)
		sets[i] = set
	}
	return sets
}

// horizonObjective solves the independent single-site staircase LP and
// returns its optimal objective.
func horizonObjective(t *testing.T, cfg Config, set *trace.Set) float64 {
	t.Helper()
	o, err := NewOfflineHorizon(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	return o.st.lastObjective
}

func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// With one site the coupling row forces out == in, and any positive
// penalty makes self-routing strictly costly, so the joint optimum must
// equal the independent horizon solve.
func TestGeoOneSiteMatchesHorizonObjective(t *testing.T) {
	cfg := DefaultConfig()
	set := testTraces(t, 2)
	want := horizonObjective(t, cfg, set)

	plan, err := SolveGeoHorizon([]GeoSite{{Config: cfg, Set: set, ImportPenaltyUSD: 25}})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(plan.Objective, want); d > 1e-6 {
		t.Fatalf("one-site geo objective %.9f vs horizon %.9f (rel %g)", plan.Objective, want, d)
	}
	if plan.ImportMWh[0] > 1e-6 || plan.ExportMWh[0] > 1e-6 {
		t.Fatalf("one-site solve routed energy: in=%g out=%g", plan.ImportMWh[0], plan.ExportMWh[0])
	}
	for i, v := range plan.RoutedDS[0] {
		if math.Abs(v-set.DemandDS.At(i)) > 1e-6 {
			t.Fatalf("slot %d routed demand %g differs from home %g", i, v, set.DemandDS.At(i))
		}
	}
}

// A penalty above every possible price gap makes routing strictly
// unprofitable, so the coupled solve must decompose into the sum of the
// independent per-site solves.
func TestGeoProhibitivePenaltyMatchesIndependentSolves(t *testing.T) {
	cfg := DefaultConfig()
	sets := geoTestSets(t, 2, []float64{0.7, 1.5})

	want := 0.0
	sites := make([]GeoSite, len(sets))
	for i, set := range sets {
		want += horizonObjective(t, cfg, set)
		sites[i] = GeoSite{Config: cfg, Set: set, ImportPenaltyUSD: 10000}
	}

	plan, err := SolveGeoHorizon(sites)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(plan.Objective, want); d > 1e-6 {
		t.Fatalf("coupled objective %.9f vs independent sum %.9f (rel %g)", plan.Objective, want, d)
	}
	for s := range sites {
		if plan.ImportMWh[s] > 1e-6 || plan.ExportMWh[s] > 1e-6 {
			t.Fatalf("site %d routed energy under prohibitive penalty: in=%g out=%g",
				s, plan.ImportMWh[s], plan.ExportMWh[s])
		}
	}
}

// With a real price gap and a small penalty, routing must strictly
// improve on the independent solves and actually move energy.
func TestGeoRoutingReducesCostUnderPriceDivergence(t *testing.T) {
	cfg := DefaultConfig()
	sets := geoTestSets(t, 2, []float64{0.6, 1.6})

	independent := 0.0
	sites := make([]GeoSite, len(sets))
	for i, set := range sets {
		independent += horizonObjective(t, cfg, set)
		sites[i] = GeoSite{Config: cfg, Set: set, ImportPenaltyUSD: 1}
	}

	plan, err := SolveGeoHorizon(sites)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Objective >= independent-1e-6 {
		t.Fatalf("coupled objective %.6f did not beat independent sum %.6f", plan.Objective, independent)
	}
	moved := plan.ImportMWh[0] + plan.ImportMWh[1]
	if moved <= 1e-6 {
		t.Fatalf("expected routed energy, got total imports %g", moved)
	}
	if plan.PenaltyUSD <= 0 {
		t.Fatalf("expected positive routing penalty, got %g", plan.PenaltyUSD)
	}
	// Conservation: total post-routing demand equals total home demand.
	for i := 0; i < sets[0].Horizon(); i++ {
		home, routed := 0.0, 0.0
		for s := range sets {
			home += sets[s].DemandDS.At(i)
			routed += plan.RoutedDS[s][i]
		}
		if math.Abs(home-routed) > 1e-6 {
			t.Fatalf("slot %d demand not conserved: home %g routed %g", i, home, routed)
		}
	}
}

// A routing cap must bound every site's post-routing demand even when
// the price gap would otherwise justify moving more.
func TestGeoRouteCapBindsRouting(t *testing.T) {
	cfg := DefaultConfig()
	sets := geoTestSets(t, 2, []float64{0.6, 1.6})

	cap := 0.0
	for i := 0; i < sets[0].Horizon(); i++ {
		cap = math.Max(cap, sets[0].DemandDS.At(i))
	}
	cap *= 1.1
	sites := []GeoSite{
		{Config: cfg, Set: sets[0], ImportPenaltyUSD: 1, RouteCapMWh: cap},
		{Config: cfg, Set: sets[1], ImportPenaltyUSD: 1, RouteCapMWh: cap},
	}

	plan, err := SolveGeoHorizon(sites)
	if err != nil {
		t.Fatal(err)
	}
	for s := range sites {
		for i, v := range plan.RoutedDS[s] {
			if v > cap+1e-6 {
				t.Fatalf("site %d slot %d routed demand %g exceeds cap %g", s, i, v, cap)
			}
		}
	}
}

func TestGeoSolveValidation(t *testing.T) {
	if _, err := SolveGeoHorizon(nil); err == nil {
		t.Fatal("expected error for empty site list")
	}
	cfg := DefaultConfig()
	a := testTraces(t, 2)
	b := testTraces(t, 1)
	_, err := SolveGeoHorizon([]GeoSite{
		{Config: cfg, Set: a},
		{Config: cfg, Set: b},
	})
	if err == nil {
		t.Fatal("expected error for mismatched horizons")
	}
	_, err = SolveGeoHorizon([]GeoSite{{Config: cfg, Set: a, ImportPenaltyUSD: -1}})
	if err == nil {
		t.Fatal("expected error for negative penalty")
	}
	_, err = SolveGeoHorizon([]GeoSite{{Config: cfg, Set: a, RouteCapMWh: -1}})
	if err == nil {
		t.Fatal("expected error for negative route cap")
	}
}
