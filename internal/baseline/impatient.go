package baseline

import (
	"encoding/json"
	"fmt"
	"math"

	"github.com/smartdpss/smartdpss/internal/sim"
)

// Impatient is the paper's online strawman: it serves every unit of demand
// as soon as it appears, at whatever the market charges, with no strategic
// deferral, no price-aware storage and no on-site generator dispatch (a
// cost-optimization asset an impatient operator never touches). The UPS
// is used only passively —
// surplus energy is absorbed rather than wasted, and the battery covers
// deficits only when the grid cannot (last resort), which is how an inline
// UPS behaves in the absence of a control policy.
type Impatient struct {
	cfg Config
	est sim.TrailingMeans
}

var _ sim.Controller = (*Impatient)(nil)

// NewImpatient returns the Impatient policy.
func NewImpatient(cfg Config) (*Impatient, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Impatient{cfg: cfg}, nil
}

// Name implements sim.Controller.
func (i *Impatient) Name() string { return "Impatient" }

// CoarseSlots implements sim.Controller.
func (i *Impatient) CoarseSlots() int { return i.cfg.T }

// PlanCoarse buys the observed net demand for every slot of the interval —
// no price consideration, no queue strategy. Like SmartDPSS it estimates
// the interval from the trailing means of the previous one (the snapshot
// at the boundary, often midnight, would systematically under-buy).
func (i *Impatient) PlanCoarse(obs sim.CoarseObs) float64 {
	dds, ddt, ren := obs.DemandDS, obs.DemandDT, obs.Renewable
	if i.est.Ready() {
		dds, ddt, ren = i.est.Means()
	}
	i.est.Reset()
	need := dds + ddt - ren
	perSlot := clamp(need, 0, i.cfg.PgridMWh)
	return perSlot * float64(obs.Slots)
}

// PlanFine serves all delay-sensitive demand plus as much backlog as the
// remaining supply capacity allows, buying real-time power for any
// shortfall and falling back to the battery only when the grid is
// exhausted. Delay-sensitive demand has strict priority: backlog service
// never claims capacity that dds needs.
func (i *Impatient) PlanFine(obs sim.FineObs) sim.Decision {
	i.est.Observe(obs.DemandDS, obs.DemandDT, obs.Renewable)
	base := obs.LongTermDue + obs.Renewable
	grtCapacity := math.Max(0, math.Min(obs.RTHeadroom, i.cfg.SmaxMWh-base))
	capacity := base + grtCapacity + obs.MaxDischarge
	serve := math.Min(math.Min(obs.Backlog, obs.SdtMax),
		math.Max(0, capacity-obs.DemandDS))
	deficit := obs.DemandDS + serve - base

	var dec sim.Decision
	dec.ServeDT = serve
	if deficit > 0 {
		grtCap := math.Max(0, math.Min(obs.RTHeadroom, i.cfg.SmaxMWh-base))
		dec.Grt = math.Min(deficit, grtCap)
		remaining := deficit - dec.Grt
		if remaining > 0 {
			dec.Discharge = math.Min(remaining, obs.MaxDischarge)
		}
		return dec
	}
	// Surplus: absorb into the battery instead of wasting.
	dec.Charge = math.Min(-deficit, obs.MaxCharge)
	return dec
}

// RecordOutcome implements sim.Controller; Impatient keeps no state.
func (i *Impatient) RecordOutcome(sim.Outcome) {}

var _ sim.Snapshotter = (*Impatient)(nil)

// impatientState is the policy's checkpoint form: only the trailing-mean
// estimator survives across slots (Config is pinned by the session
// checkpoint's config hash).
type impatientState struct {
	Est sim.TrailingMeansState `json:"est"`
}

// SnapshotState implements sim.Snapshotter.
func (i *Impatient) SnapshotState() ([]byte, error) {
	return json.Marshal(impatientState{Est: i.est.State()})
}

// RestoreState implements sim.Snapshotter.
func (i *Impatient) RestoreState(data []byte) error {
	var s impatientState
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("baseline: decode impatient state: %w", err)
	}
	i.est.Restore(s.Est)
	return nil
}

func clamp(x, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, x)) }
