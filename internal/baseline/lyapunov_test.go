package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/smartdpss/smartdpss/internal/battery"
	"github.com/smartdpss/smartdpss/internal/sim"
	"github.com/smartdpss/smartdpss/internal/trace"
)

// lyapunovTestConfig pins a unit battery with round numbers so the
// threshold arithmetic in the tests is exact: θ = 0.5, ηc = 0.8,
// ηd = 1.25, V = 1 → charge below p = 0.8·(0.5−b), discharge above
// p = 1.25·(0.5−b).
func lyapunovTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Battery = battery.Params{
		CapacityMWh:     1,
		MinLevelMWh:     0,
		MaxChargeMWh:    0.5,
		MaxDischargeMWh: 0.5,
		ChargeEff:       0.8,
		DischargeEff:    1.25,
		OpCostUSD:       0.1,
		InitialMWh:      0.5,
	}
	return cfg
}

func newTestLyapunov(t *testing.T) *Lyapunov {
	t.Helper()
	l, err := NewLyapunov(lyapunovTestConfig(), 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLyapunovThresholdRegimes(t *testing.T) {
	l := newTestLyapunov(t)
	cases := []struct {
		name      string
		battery   float64
		price     float64
		charge    bool
		discharge bool
	}{
		// b = 0.1 (x = −0.4): charge below 0.32, discharge above 0.5.
		{"cheap below theta charges", 0.1, 0.20, true, false},
		{"deadband between thresholds", 0.1, 0.40, false, false},
		{"expensive below theta discharges", 0.1, 0.60, false, true},
		// b = 0.8 (x = +0.3): both thresholds negative → any price
		// discharges.
		{"above theta discharges at any price", 0.8, 0.01, false, true},
		// b = θ: the queue term vanishes, so the positive price term
		// alone drives a discharge (steady state settles below θ).
		{"at theta positive price discharges", 0.5, 0.40, false, true},
		// b = θ at a zero price: both strict inequalities sit at 0 →
		// deadband.
		{"at theta zero price idles", 0.5, 0, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			obs := sim.FineObs{
				PriceRT: tc.price, Battery: tc.battery,
				DemandDS: 0.6, LongTermDue: 0.2, SdtMax: 1.0,
				RTHeadroom: 2.0, MaxCharge: 0.5, MaxDischarge: 0.5,
			}
			dec := l.PlanFine(obs)
			if (dec.Charge > 1e-12) != tc.charge {
				t.Errorf("Charge = %g, want charging=%v", dec.Charge, tc.charge)
			}
			if (dec.Discharge > 1e-12) != tc.discharge {
				t.Errorf("Discharge = %g, want discharging=%v", dec.Discharge, tc.discharge)
			}
			if dec.Charge > 1e-12 && dec.Discharge > 1e-12 {
				t.Errorf("charge and discharge both fired: %+v", dec)
			}
		})
	}
}

func TestLyapunovDischargeCoversDemandBeforeGrid(t *testing.T) {
	l := newTestLyapunov(t)
	obs := sim.FineObs{
		PriceRT: 100, Battery: 0.8, // discharge regime
		DemandDS: 0.9, Backlog: 0.3, SdtMax: 1.0,
		LongTermDue: 0.2, RTHeadroom: 2.0,
		MaxCharge: 0.5, MaxDischarge: 0.5,
	}
	dec := l.PlanFine(obs)
	// Need 0.9 + 0.3 = 1.2, base 0.2, deficit 1.0: battery first (0.5),
	// grid covers the rest (0.5).
	if math.Abs(dec.ServeDT-0.3) > 1e-12 {
		t.Errorf("ServeDT = %g, want 0.3", dec.ServeDT)
	}
	if math.Abs(dec.Discharge-0.5) > 1e-12 || math.Abs(dec.Grt-0.5) > 1e-12 {
		t.Errorf("dec = %+v, want discharge=0.5 grt=0.5", dec)
	}
}

func TestLyapunovDischargeOnlyWhatIsUseful(t *testing.T) {
	l := newTestLyapunov(t)
	obs := sim.FineObs{
		PriceRT: 100, Battery: 0.8, // discharge regime
		DemandDS: 0.3, LongTermDue: 0.2, SdtMax: 1.0,
		RTHeadroom: 2.0, MaxCharge: 0.5, MaxDischarge: 0.5,
	}
	dec := l.PlanFine(obs)
	// Need 0.3, base 0.2 → only 0.1 of discharge is useful; pushing the
	// full 0.5 would be wasted energy.
	if math.Abs(dec.Discharge-0.1) > 1e-12 || dec.Grt != 0 {
		t.Errorf("dec = %+v, want discharge=0.1 grt=0", dec)
	}
}

func TestLyapunovChargesFromSpareGridCapacity(t *testing.T) {
	l := newTestLyapunov(t)
	obs := sim.FineObs{
		PriceRT: 0.1, Battery: 0.1, // charge regime (0.1 < 0.32)
		DemandDS: 0.6, LongTermDue: 0.2, SdtMax: 1.0,
		RTHeadroom: 2.0, MaxCharge: 0.5, MaxDischarge: 0.5,
	}
	dec := l.PlanFine(obs)
	// Deficit 0.4 from the grid, plus 0.5 more grid draw to fill the
	// battery at the cheap price.
	if math.Abs(dec.Charge-0.5) > 1e-12 {
		t.Errorf("Charge = %g, want 0.5", dec.Charge)
	}
	if math.Abs(dec.Grt-0.9) > 1e-12 {
		t.Errorf("Grt = %g, want 0.9 (0.4 demand + 0.5 charge)", dec.Grt)
	}
	if dec.Discharge != 0 {
		t.Errorf("Discharge = %g, want 0", dec.Discharge)
	}
}

func TestLyapunovAbsorbsSurplusInEveryRegime(t *testing.T) {
	l := newTestLyapunov(t)
	for _, tc := range []struct {
		name    string
		battery float64
		price   float64
	}{
		{"discharge regime", 0.8, 100},
		{"charge regime", 0.1, 0.1},
		{"deadband", 0.1, 0.40},
	} {
		t.Run(tc.name, func(t *testing.T) {
			obs := sim.FineObs{
				PriceRT: tc.price, Battery: tc.battery,
				DemandDS: 0.2, LongTermDue: 0.5, Renewable: 0.4,
				SdtMax: 1.0, MaxCharge: 0.5, MaxDischarge: 0.5,
			}
			dec := l.PlanFine(obs)
			// Surplus 0.7 capped at MaxCharge 0.5; free energy is stored,
			// never wasted, whatever the price says.
			if math.Abs(dec.Charge-0.5) > 1e-12 {
				t.Errorf("Charge = %g, want 0.5", dec.Charge)
			}
			if dec.Discharge != 0 || dec.Grt != 0 {
				t.Errorf("dec = %+v, want no grid, no discharge", dec)
			}
		})
	}
}

func TestLyapunovThresholdsDisjoint(t *testing.T) {
	// Sweep (level, price): the charge and discharge conditions never
	// fire together — the drift coefficients guarantee disjointness for
	// ηc ≤ 1 ≤ ηd and non-negative prices.
	l := newTestLyapunov(t)
	for b := 0.0; b <= 1.0; b += 0.05 {
		for p := 0.0; p <= 150; p += 7.5 {
			obs := sim.FineObs{
				PriceRT: p, Battery: b,
				DemandDS: 0.6, LongTermDue: 0.3, SdtMax: 1.0,
				RTHeadroom: 2.0, MaxCharge: 0.5, MaxDischarge: 0.5,
			}
			dec := l.PlanFine(obs)
			if dec.Charge > 1e-12 && dec.Discharge > 1e-12 {
				t.Fatalf("b=%g p=%g: charge %g and discharge %g both fired",
					b, p, dec.Charge, dec.Discharge)
			}
		}
	}
}

func TestLyapunovEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	l, err := NewLyapunov(cfg, 0, 0) // scale-aware defaults
	if err != nil {
		t.Fatal(err)
	}
	set := testTraces(t, 7)
	rep, err := sim.Run(simConfig(cfg), set, l)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnservedMWh > 1e-6 {
		t.Errorf("unserved = %g, want 0", rep.UnservedMWh)
	}
	if rep.TotalCostUSD <= 0 || math.IsNaN(rep.TotalCostUSD) {
		t.Errorf("total cost = %g", rep.TotalCostUSD)
	}
	if rep.BatteryMinMWh < cfg.Battery.MinLevelMWh-1e-9 ||
		rep.BatteryMaxMWh > cfg.Battery.CapacityMWh+1e-9 {
		t.Errorf("battery excursion [%g, %g] outside [%g, %g]",
			rep.BatteryMinMWh, rep.BatteryMaxMWh,
			cfg.Battery.MinLevelMWh, cfg.Battery.CapacityMWh)
	}
	// The thresholds must actually engage the battery — the arm is not
	// a rebadged Impatient.
	if rep.BatteryOps == 0 {
		t.Error("battery never moved; thresholds inert")
	}
}

func TestLyapunovSnapshotRoundTrip(t *testing.T) {
	l := newTestLyapunov(t)
	for i := 0; i < 5; i++ {
		l.PlanFine(sim.FineObs{
			DemandDS: 0.5 + 0.1*float64(i), DemandDT: 0.2, Renewable: 0.1,
			Battery: 0.5, SdtMax: 1.0,
		})
	}
	blob, err := l.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	restored := newTestLyapunov(t)
	if err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	obs := sim.CoarseObs{Slots: 24, DemandDS: 1, DemandDT: 1, Renewable: 0}
	if got, want := restored.PlanCoarse(obs), l.PlanCoarse(obs); got != want {
		t.Errorf("restored PlanCoarse = %g, original = %g", got, want)
	}
	if err := restored.RestoreState([]byte("not json")); err == nil {
		t.Error("garbage state accepted")
	}
}

func TestNewLyapunovValidation(t *testing.T) {
	cfg := lyapunovTestConfig()
	if _, err := NewLyapunov(cfg, 1, 1.5); err == nil {
		t.Error("thetaFrac > 1 accepted")
	}
	if _, err := NewLyapunov(cfg, math.NaN(), 0.5); err == nil {
		t.Error("NaN V accepted")
	}
	bad := cfg
	bad.T = 0
	if _, err := NewLyapunov(bad, 1, 0.5); err == nil {
		t.Error("invalid config accepted")
	}
	l, err := NewLyapunov(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	span := cfg.Battery.CapacityMWh - cfg.Battery.MinLevelMWh
	if want := span / cfg.PmaxUSD; l.v != want {
		t.Errorf("default V = %g, want %g", l.v, want)
	}
	if want := cfg.Battery.MinLevelMWh + 0.6*span; l.theta != want {
		t.Errorf("default theta = %g, want %g", l.theta, want)
	}
	if l.Name() != "Lyapunov" || l.CoarseSlots() != cfg.T {
		t.Errorf("identity: name=%q coarseSlots=%d", l.Name(), l.CoarseSlots())
	}
}

// randomLyapunovTraces mirrors the core fuzz harness's adversarial trace
// builder: demand/renewable/prices drawn independently per slot with
// spikes and flat stretches — no stationarity for the thresholds to lean
// on.
func randomLyapunovTraces(r *rand.Rand, slots int, pgrid, pmax float64) *trace.Set {
	mk := func(name string) *trace.Series { return trace.New(name, "MWh", 60, slots) }
	set := &trace.Set{
		DemandDS:  mk("demand_ds"),
		DemandDT:  mk("demand_dt"),
		Renewable: mk("renewable"),
		PriceLT:   mk("price_lt"),
		PriceRT:   mk("price_rt"),
	}
	for i := 0; i < slots; i++ {
		switch r.Intn(5) {
		case 0:
			set.DemandDS.Values[i] = r.Float64() * 0.3
		case 1:
			set.DemandDS.Values[i] = pgrid * (0.8 + 0.2*r.Float64())
		default:
			set.DemandDS.Values[i] = r.Float64() * pgrid * 0.7
		}
		set.DemandDT.Values[i] = r.Float64() * pgrid / 2
		set.Renewable.Values[i] = r.Float64() * r.Float64() * pgrid
		set.PriceLT.Values[i] = 1 + r.Float64()*(pmax*0.5)
		set.PriceRT.Values[i] = 1 + r.Float64()*(pmax-1)
	}
	return set
}

// TestFuzzLyapunovInvariants extends the controller fuzz coverage to the
// fifth policy arm: random V/θ over adversarial traces, with an
// operation budget in part of the draws. The plant physics must hold —
// battery inside [Bmin, Bmax], no unserved delay-sensitive energy (dds ≤
// Pgrid by construction), finite non-negative cost, and BatteryOps never
// exceeding MaxOps.
func TestFuzzLyapunovInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(76))
	f := func() bool {
		cfg := DefaultConfig()
		if r.Intn(4) == 0 {
			cfg.Battery.MaxOps = 5 + r.Intn(30)
		}
		v := math.Pow(10, -3+4*r.Float64()) // 1e-3 .. 1e1
		theta := 0.05 + 0.9*r.Float64()
		l, err := NewLyapunov(cfg, v, theta)
		if err != nil {
			t.Logf("NewLyapunov: %v", err)
			return false
		}
		slots := 48 + r.Intn(120)
		set := randomLyapunovTraces(r, slots, cfg.PgridMWh, cfg.PmaxUSD)
		sc := simConfig(cfg)
		rep, err := sim.Run(sc, set, l)
		if err != nil {
			t.Logf("Run: %v (V=%g theta=%g)", err, v, theta)
			return false
		}
		if rep.BatteryMinMWh < cfg.Battery.MinLevelMWh-1e-9 ||
			rep.BatteryMaxMWh > cfg.Battery.CapacityMWh+1e-9 {
			t.Logf("battery bounds violated: [%g, %g]", rep.BatteryMinMWh, rep.BatteryMaxMWh)
			return false
		}
		if rep.UnservedMWh > 1e-6 {
			t.Logf("unserved %g with dds <= Pgrid", rep.UnservedMWh)
			return false
		}
		if math.IsNaN(rep.TotalCostUSD) || math.IsInf(rep.TotalCostUSD, 0) || rep.TotalCostUSD < 0 {
			t.Logf("cost = %g", rep.TotalCostUSD)
			return false
		}
		if cfg.Battery.MaxOps > 0 && rep.BatteryOps > cfg.Battery.MaxOps {
			t.Logf("ops %d exceed budget %d", rep.BatteryOps, cfg.Battery.MaxOps)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
