package baseline

import (
	"math"
	"testing"
)

// TestWarmIntervalSequenceMatchesCold replays the OfflineOptimal interval
// sequence twice: once through a single lpState whose solver warm-starts
// each interval from the previous one's basis, and once through a fresh
// cold state per interval. The optimal objectives must agree exactly (to
// round-off) and the warm plans must be feasible. Decision vectors may
// legitimately differ — these LPs are degenerate, and a warm solve can
// land on a different vertex of the same optimal face — which is exactly
// why the production baselines solve cold: the golden snapshots pin the
// cold vertex byte for byte.
func TestWarmIntervalSequenceMatchesCold(t *testing.T) {
	cfg := DefaultConfig()
	set := testTraces(t, 7)
	b0 := cfg.Battery.InitialMWh
	bat := cfg.Battery

	warm := lpState{warm: true}
	for k := 0; k*cfg.T < set.Horizon(); k++ {
		start := k * cfg.T
		n := set.Horizon() - start
		if n > cfg.T {
			n = cfg.T
		}
		gbefW, planW, err := warm.solveInterval(cfg, set, start, n, b0, 0)
		if err != nil {
			t.Fatalf("interval %d warm: %v", k, err)
		}
		objW := warm.lastObjective

		var cold lpState
		if _, _, err := cold.solveInterval(cfg, set, start, n, b0, 0); err != nil {
			t.Fatalf("interval %d cold: %v", k, err)
		}
		objC := cold.lastObjective

		if diff := math.Abs(objW - objC); diff > 1e-6*(1+math.Abs(objC)) {
			t.Fatalf("interval %d: warm objective %v != cold %v (diff %g)", k, objW, objC, diff)
		}
		if gbefW < -1e-9 || gbefW > float64(n)*cfg.PgridMWh+1e-9 {
			t.Fatalf("interval %d: warm gbef %v outside [0, %v]", k, gbefW, float64(n)*cfg.PgridMWh)
		}
		for i, dec := range planW {
			switch {
			case dec.Grt < -1e-9 || dec.Grt > cfg.PgridMWh+1e-9:
				t.Fatalf("interval %d slot %d: grt %v out of bounds", k, i, dec.Grt)
			case dec.ServeDT < -1e-9 || dec.ServeDT > cfg.SdtMaxMWh+1e-9:
				t.Fatalf("interval %d slot %d: serveDT %v out of bounds", k, i, dec.ServeDT)
			case dec.Charge < -1e-9 || dec.Charge > bat.MaxChargeMWh+1e-9:
				t.Fatalf("interval %d slot %d: charge %v out of bounds", k, i, dec.Charge)
			case dec.Discharge < -1e-9 || dec.Discharge > bat.MaxDischargeMWh+1e-9:
				t.Fatalf("interval %d slot %d: discharge %v out of bounds", k, i, dec.Discharge)
			}
		}
	}
}

// TestWarmIntervalSequencePivotOverhead bounds the cost of basis reuse on
// the real interval sequence. At this problem scale the dense-tableau
// re-installation plus feasibility repair roughly cancels the skipped
// phase 1 — the measured reason production baselines run cold — but it
// must never blow up: a thrashing repair loop would show here as a pivot
// explosion.
func TestWarmIntervalSequencePivotOverhead(t *testing.T) {
	cfg := DefaultConfig()
	set := testTraces(t, 7)
	b0 := cfg.Battery.InitialMWh

	warm := lpState{warm: true}
	warmPivots, coldPivots := 0, 0
	for k := 0; k*cfg.T < set.Horizon(); k++ {
		start := k * cfg.T
		if _, _, err := warm.solveInterval(cfg, set, start, cfg.T, b0, 0); err != nil {
			t.Fatal(err)
		}
		warmPivots += warm.lastIterations

		// Warm bases exist only for the row formulation, so the cold
		// comparator pins rowBounds — the bounded-variable production path
		// pivots less to begin with and would skew the ratio.
		cold := lpState{rowBounds: true}
		if _, _, err := cold.solveInterval(cfg, set, start, cfg.T, b0, 0); err != nil {
			t.Fatal(err)
		}
		coldPivots += cold.lastIterations
	}
	t.Logf("pivots over the interval sequence: warm %d vs cold %d", warmPivots, coldPivots)
	if warmPivots > coldPivots*3/2 {
		t.Errorf("warm pivots %d exceed 1.5× cold pivots %d — repair is thrashing",
			warmPivots, coldPivots)
	}
}
