// Package metrics provides streaming statistics used by the simulation
// reports and experiments: Welford mean/variance, extrema and exact
// quantiles over retained samples. Horizons in this repository are small
// (hundreds to tens of thousands of slots), so retaining samples for exact
// quantiles is cheaper than approximate sketches.
//
// The package owns the accumulator types only — no simulation semantics.
// internal/sim feeds them while building its per-run Report, and
// internal/experiments aggregates across seeds and sweep points with
// them; nothing below those two layers imports this package.
package metrics

import (
	"errors"
	"math"
	"sort"
)

// Stream accumulates scalar samples with O(1) updates.
type Stream struct {
	n        int
	mean     float64
	m2       float64
	min, max float64
	keep     bool
	samples  []float64
}

// NewStream returns an empty stream. When keepSamples is true, samples are
// retained so that Quantile is available.
func NewStream(keepSamples bool) *Stream {
	return &Stream{min: math.Inf(1), max: math.Inf(-1), keep: keepSamples}
}

// Add records one sample.
func (s *Stream) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	s.min = math.Min(s.min, x)
	s.max = math.Max(s.max, x)
	if s.keep {
		s.samples = append(s.samples, x)
	}
}

// Count returns the number of samples.
func (s *Stream) Count() int { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Stream) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Sum returns n·mean.
func (s *Stream) Sum() float64 { return s.mean * float64(s.n) }

// Variance returns the population variance (0 when empty).
func (s *Stream) Variance() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest sample (+Inf when empty).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest sample (-Inf when empty).
func (s *Stream) Max() float64 { return s.max }

// StreamState is a stream's mutable state, exported for session
// checkpoints. An empty stream stores zero Min/Max (the live ±Inf
// sentinels do not survive JSON); Restore reinstates the sentinels from
// N == 0, so the round trip is exact in both cases.
type StreamState struct {
	N       int       `json:"n"`
	Mean    float64   `json:"mean"`
	M2      float64   `json:"m2"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Samples []float64 `json:"samples,omitempty"`
}

// State captures the stream's mutable state for a checkpoint.
func (s *Stream) State() StreamState {
	st := StreamState{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max}
	if st.N == 0 {
		st.Min, st.Max = 0, 0
	}
	if s.keep && len(s.samples) > 0 {
		st.Samples = make([]float64, len(s.samples))
		copy(st.Samples, s.samples)
	}
	return st
}

// Restore overwrites the stream's mutable state from a checkpoint,
// keeping the stream's own keep-samples configuration.
func (s *Stream) Restore(st StreamState) {
	s.n = st.N
	s.mean = st.Mean
	s.m2 = st.M2
	s.min = st.Min
	s.max = st.Max
	if st.N == 0 {
		s.min, s.max = math.Inf(1), math.Inf(-1)
	}
	s.samples = s.samples[:0]
	if s.keep {
		s.samples = append(s.samples, st.Samples...)
	}
}

// ErrNoSamples is returned by Quantile on an empty or sample-less stream.
var ErrNoSamples = errors.New("metrics: no retained samples")

// Quantile returns the p-quantile (p in [0, 1]) using linear interpolation
// between retained samples.
func (s *Stream) Quantile(p float64) (float64, error) {
	if !s.keep || len(s.samples) == 0 {
		return 0, ErrNoSamples
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, errors.New("metrics: quantile p outside [0, 1]")
	}
	sorted := make([]float64, len(s.samples))
	copy(sorted, s.samples)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}
