package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStreamBasics(t *testing.T) {
	s := NewStream(false)
	if s.Count() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("empty stream must report zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d, want 8", s.Count())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", s.Mean())
	}
	if math.Abs(s.StdDev()-2) > 1e-12 {
		t.Errorf("StdDev = %g, want 2", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %g/%g, want 2/9", s.Min(), s.Max())
	}
	if math.Abs(s.Sum()-40) > 1e-12 {
		t.Errorf("Sum = %g, want 40", s.Sum())
	}
}

func TestStreamQuantile(t *testing.T) {
	s := NewStream(true)
	for i := 1; i <= 5; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
	}
	for _, tt := range tests {
		got, err := s.Quantile(tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
}

func TestStreamQuantileErrors(t *testing.T) {
	noKeep := NewStream(false)
	noKeep.Add(1)
	if _, err := noKeep.Quantile(0.5); err == nil {
		t.Error("want error when samples are not retained")
	}
	empty := NewStream(true)
	if _, err := empty.Quantile(0.5); err == nil {
		t.Error("want error for empty stream")
	}
	s := NewStream(true)
	s.Add(1)
	if _, err := s.Quantile(-0.1); err == nil {
		t.Error("want error for p < 0")
	}
	if _, err := s.Quantile(1.1); err == nil {
		t.Error("want error for p > 1")
	}
	if got, err := s.Quantile(0.5); err != nil || got != 1 {
		t.Errorf("single sample quantile = %g, %v", got, err)
	}
}

// TestPropertyWelfordMatchesDirect: streaming mean/variance must match the
// two-pass formulas.
func TestPropertyWelfordMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func() bool {
		n := 1 + r.Intn(500)
		vals := make([]float64, n)
		s := NewStream(false)
		for i := range vals {
			vals[i] = r.NormFloat64() * 100
			s.Add(vals[i])
		}
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(n)
		varSum := 0.0
		for _, v := range vals {
			varSum += (v - mean) * (v - mean)
		}
		variance := varSum / float64(n)
		return math.Abs(s.Mean()-mean) < 1e-8*math.Max(1, math.Abs(mean)) &&
			math.Abs(s.Variance()-variance) < 1e-6*math.Max(1, variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyQuantileMonotone: quantiles are monotone in p and bracketed
// by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	f := func() bool {
		s := NewStream(true)
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			s.Add(r.Float64() * 50)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			q, err := s.Quantile(p)
			if err != nil {
				return false
			}
			if q < prev-1e-12 || q < s.Min()-1e-12 || q > s.Max()+1e-12 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
