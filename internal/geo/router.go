package geo

import (
	"github.com/smartdpss/smartdpss/internal/trace"
)

// routeGreedy computes the online routing: per slot, move delay-sensitive
// demand from the most expensive sites to cheaper ones while the
// real-time price gap exceeds the importer's latency penalty, bounded by
// the importer's spare routing capacity and the exporter's remaining
// home demand. The router observes only slot-τ quantities (that slot's
// real-time prices and home demands), so it is informationally online
// even though Run precomputes the whole horizon before stepping.
//
// All orderings are deterministic: sites sort by price with the site
// index as tie-break, and every float operation is a fixed sequential
// reduction, so the routing is byte-identical across runs and platforms.
func routeGreedy(sites []SiteSpec, sets []*trace.Set, slotHours float64) [][]float64 {
	n := len(sites)
	H := sets[0].Horizon()
	routed := make([][]float64, n)
	for s := range routed {
		routed[s] = make([]float64, H)
	}

	capMWh := make([]float64, n)
	penalty := make([]float64, n)
	for s := range sites {
		capMWh[s] = routeCapMWh(&sites[s], slotHours)
		penalty[s] = sites[s].ImportPenaltyUSDPerMWh
	}

	price := make([]float64, n)
	placed := make([]float64, n)  // current post-routing demand
	movable := make([]float64, n) // home demand still exportable
	importers := make([]int, n)   // ascending price + penalty
	exporters := make([]int, n)   // descending price

	const eps = 1e-9
	for i := 0; i < H; i++ {
		for s := 0; s < n; s++ {
			price[s] = sets[s].PriceRT.At(i)
			home := sets[s].DemandDS.At(i)
			placed[s] = home
			movable[s] = home
			importers[s] = s
			exporters[s] = s
		}
		// Insertion sorts: stable by construction, index tie-break via
		// strict comparison on (key, index) pairs already in index order.
		sortByKey(importers, func(s int) float64 { return price[s] + penalty[s] })
		sortByKey(exporters, func(s int) float64 { return -price[s] })

		for _, x := range exporters {
			if movable[x] <= eps {
				continue
			}
			for _, c := range importers {
				if c == x {
					continue
				}
				if price[c]+penalty[c] >= price[x]-eps {
					break // importers only get more expensive from here
				}
				spare := 0.0
				if capMWh[c] > 0 {
					spare = capMWh[c] - placed[c]
				} else {
					spare = movable[x] // uncapped importer
				}
				if spare <= eps {
					continue
				}
				move := movable[x]
				if spare < move {
					move = spare
				}
				placed[x] -= move
				placed[c] += move
				movable[x] -= move
				if movable[x] <= eps {
					break
				}
			}
		}
		for s := 0; s < n; s++ {
			v := placed[s]
			if v < 0 {
				v = 0
			}
			routed[s][i] = v
		}
	}
	return routed
}

// sortByKey insertion-sorts idx ascending by key with the site index as
// tie-break (idx starts in index order, and insertion sort is stable).
func sortByKey(idx []int, key func(int) float64) {
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		k := key(v)
		j := i - 1
		for j >= 0 && key(idx[j]) > k {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = v
	}
}
