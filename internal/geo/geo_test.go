package geo

import (
	"encoding/json"
	"fmt"
	"testing"

	"github.com/smartdpss/smartdpss/internal/engine"
)

func testSites(t *testing.T, n, days int) []SiteSpec {
	t.Helper()
	sites := make([]SiteSpec, n)
	for i := range sites {
		tc := engine.DefaultTraceConfig()
		tc.Days = days
		opts := engine.DefaultOptions()
		if i > 0 {
			// Derived per-site seeds and a price spread so sites diverge;
			// site 0 stays the exact default scope (the legacy pin). The
			// market price cap scales with the site's prices.
			tc.Seed = tc.Seed + int64(i)*7919
			tc.PriceScale = 1 + 0.3*float64(i)
			opts.PmaxUSD *= tc.PriceScale
		}
		sites[i] = SiteSpec{
			Name:                   fmt.Sprintf("site-%d", i),
			Options:                opts,
			Trace:                  tc,
			ImportPenaltyUSDPerMWh: 5,
		}
	}
	return sites
}

func reportBytes(t *testing.T, rep *engine.Report) string {
	t.Helper()
	js, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return rep.String() + "\n" + string(js)
}

// A one-site geo run with no routing must reproduce the legacy
// single-site engine byte for byte, for every policy: the geo layer
// passes the generated traces through unmodified and steps the same
// replay session the batch path does.
func TestGeoOneSiteMatchesLegacy(t *testing.T) {
	policies := []engine.Policy{
		engine.PolicySmartDPSS,
		engine.PolicyImpatient,
		engine.PolicyOfflineOptimal,
		engine.PolicyOfflineHorizon,
	}
	for _, policy := range policies {
		t.Run(string(policy), func(t *testing.T) {
			opts := engine.DefaultOptions()
			tc := engine.DefaultTraceConfig()
			tc.Days = 7

			traces, err := engine.GenerateTraces(tc)
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := engine.Simulate(policy, opts, traces)
			if err != nil {
				t.Fatal(err)
			}

			for _, router := range []Router{RouterNone, RouterGreedy} {
				res, err := Run(Config{
					Sites:  []SiteSpec{{Name: "solo", Options: opts, Trace: tc}},
					Policy: policy,
					Router: router,
				})
				if err != nil {
					t.Fatalf("router %s: %v", router, err)
				}
				got := reportBytes(t, res.Sites[0].Report)
				want := reportBytes(t, legacy)
				if got != want {
					t.Fatalf("router %s: one-site geo report differs from legacy:\n--- geo ---\n%s\n--- legacy ---\n%s",
						router, got, want)
				}
				if res.MovedMWh != 0 || res.RoutingPenaltyUSD != 0 {
					t.Fatalf("router %s: one-site run moved energy: %g MWh, %g USD",
						router, res.MovedMWh, res.RoutingPenaltyUSD)
				}
			}
		})
	}
}

// The sharded step must be byte-identical at every parallelism level:
// results are reduced in fixed site order regardless of which worker
// steps which site.
func TestGeoParallelDeterminism(t *testing.T) {
	sites := testSites(t, 4, 7)
	run := func(parallel int) *Result {
		res, err := Run(Config{
			Sites:    sites,
			Policy:   engine.PolicySmartDPSS,
			Router:   RouterGreedy,
			Parallel: parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	for _, parallel := range []int{2, 4, 8} {
		par := run(parallel)
		for s := range seq.Sites {
			a := reportBytes(t, seq.Sites[s].Report)
			b := reportBytes(t, par.Sites[s].Report)
			if a != b {
				t.Fatalf("parallel %d: site %d report differs from sequential", parallel, s)
			}
		}
		if seq.TotalCostUSD != par.TotalCostUSD ||
			seq.RoutingPenaltyUSD != par.RoutingPenaltyUSD ||
			seq.MovedMWh != par.MovedMWh ||
			seq.PeakGridMW != par.PeakGridMW ||
			seq.PeakBacklogMWh != par.PeakBacklogMWh {
			t.Fatalf("parallel %d: aggregates differ from sequential", parallel)
		}
	}
}

// The LP router must run end to end and conserve total demand across
// sites (the per-slot coupling row).
func TestGeoLPRouterRuns(t *testing.T) {
	sites := testSites(t, 2, 2)
	sites[0].Trace.PriceScale = 0.6
	sites[1].Trace.PriceScale = 1.6
	sites[1].Options.PmaxUSD = 240
	sites[0].ImportPenaltyUSDPerMWh = 1
	sites[1].ImportPenaltyUSDPerMWh = 1

	res, err := Run(Config{Sites: sites, Policy: engine.PolicySmartDPSS, Router: RouterLP})
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedMWh <= 0 {
		t.Fatal("expected the LP router to move demand under a 0.6/1.6 price spread")
	}
	var imp, exp float64
	for s := range res.Sites {
		imp += res.Sites[s].ImportedMWh
		exp += res.Sites[s].ExportedMWh
	}
	if diff := imp - exp; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("imports %g and exports %g do not balance", imp, exp)
	}
}

// Extra workers must come out of — and go back into — the shared suite
// budget, so nested fan-out cannot oversubscribe a run.
func TestGeoReturnsSuiteTokens(t *testing.T) {
	tokens := make(chan struct{}, 3)
	for i := 0; i < 3; i++ {
		tokens <- struct{}{}
	}
	_, err := Run(Config{
		Sites:    testSites(t, 4, 2),
		Policy:   engine.PolicySmartDPSS,
		Router:   RouterGreedy,
		Parallel: 8,
		Tokens:   tokens,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tokens); got != 3 {
		t.Fatalf("suite budget not restored: %d tokens, want 3", got)
	}
}

func TestGeoConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("expected error for empty site list")
	}
	sites := testSites(t, 2, 2)
	sites[1].Trace.Days = 3
	if _, err := Run(Config{Sites: sites, Policy: engine.PolicySmartDPSS}); err == nil {
		t.Fatal("expected error for mismatched days")
	}
	sites = testSites(t, 1, 2)
	if _, err := Run(Config{Sites: sites, Policy: engine.PolicySmartDPSS, Router: Router("warp")}); err == nil {
		t.Fatal("expected error for unknown router")
	}
	sites[0].ImportPenaltyUSDPerMWh = -1
	if _, err := Run(Config{Sites: sites, Policy: engine.PolicySmartDPSS}); err == nil {
		t.Fatal("expected error for negative penalty")
	}
}
