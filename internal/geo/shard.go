package geo

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"github.com/smartdpss/smartdpss/internal/engine"
)

// stepper drives N site sessions through one slot in parallel. Workers
// are persistent goroutines signalled per slot over preallocated
// channels, and sites are claimed from an atomic counter, so the per-slot
// step allocates nothing no matter how many sites or workers run. The
// outs slice is written by whichever worker claims each site and read by
// the caller only after every worker has signalled done — the channel
// handoff is the happens-before edge — and the caller reduces it in
// fixed site order, so results are byte-identical at every GOMAXPROCS.
//
// With one site (or Parallel 1) no workers spawn and the caller steps
// the sessions itself: the legacy single-site execution path, exactly.
type stepper struct {
	sessions []*engine.Session
	outs     []engine.SlotOutcome
	errs     []error
	next     atomic.Int64

	starts []chan struct{} // one per worker; closed on shutdown
	done   chan struct{}
	tokens chan struct{} // suite budget to return tokens to (may be nil)
	held   int           // tokens acquired from the budget
}

// newStepper sizes the worker pool: at most one goroutine per site,
// bounded by parallel (GOMAXPROCS when 0), minus the caller's own hands.
// When a suite token budget is present, each extra worker additionally
// requires a token, acquired non-blockingly — under a saturated suite the
// stepper degrades toward sequential stepping instead of oversubscribing.
func newStepper(sessions []*engine.Session, parallel int, tokens chan struct{}) *stepper {
	width := parallel
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	w := len(sessions)
	if width < w {
		w = width
	}
	extra := w - 1
	if extra < 0 {
		extra = 0
	}
	held := 0
	if tokens != nil {
	acquire:
		for held < extra {
			select {
			case <-tokens:
				held++
			default:
				break acquire
			}
		}
		extra = held
	}

	st := &stepper{
		sessions: sessions,
		outs:     make([]engine.SlotOutcome, len(sessions)),
		errs:     make([]error, len(sessions)),
		starts:   make([]chan struct{}, extra),
		done:     make(chan struct{}, extra),
		tokens:   tokens,
		held:     held,
	}
	for i := range st.starts {
		st.starts[i] = make(chan struct{}, 1)
		go st.worker(st.starts[i])
	}
	return st
}

// worker steps sites claimed from the shared counter, once per start
// signal, until the start channel closes.
func (st *stepper) worker(start chan struct{}) {
	for range start {
		st.work()
		st.done <- struct{}{}
	}
}

// work claims and steps sites until the counter runs out.
func (st *stepper) work() {
	for {
		i := int(st.next.Add(1)) - 1
		if i >= len(st.sessions) {
			return
		}
		st.outs[i], st.errs[i] = st.sessions[i].StepReplay()
	}
}

// step advances every session one slot. On return, outs holds each
// site's committed outcome in site order. Errors surface lowest site
// index first so failure reporting is deterministic too.
func (st *stepper) step() error {
	st.next.Store(0)
	for _, start := range st.starts {
		start <- struct{}{}
	}
	st.work()
	for range st.starts {
		<-st.done
	}
	for s, err := range st.errs {
		if err != nil {
			return fmt.Errorf("geo: site %d: %w", s, err)
		}
	}
	return nil
}

// close shuts the workers down and returns any held suite tokens.
func (st *stepper) close() {
	for _, start := range st.starts {
		close(start)
	}
	for i := 0; i < st.held; i++ {
		st.tokens <- struct{}{}
	}
}
