package geo

import (
	"math"
	"testing"

	"github.com/smartdpss/smartdpss/internal/trace"
)

// routerSet builds a minimal synthetic set for router unit tests; the
// greedy router reads only DemandDS and PriceRT.
func routerSet(ds, rt []float64) *trace.Set {
	return &trace.Set{
		DemandDS: trace.FromValues("dds", "MWh", 60, ds),
		PriceRT:  trace.FromValues("prt", "USD/MWh", 60, rt),
	}
}

func TestGreedyMovesTowardCheapSite(t *testing.T) {
	sites := []SiteSpec{
		{Name: "cheap", RouteCapMW: 2, ImportPenaltyUSDPerMWh: 5},
		{Name: "dear", RouteCapMW: 2, ImportPenaltyUSDPerMWh: 5},
	}
	sets := []*trace.Set{
		routerSet([]float64{1.0, 1.0}, []float64{20, 20}),
		routerSet([]float64{1.5, 1.5}, []float64{100, 20}),
	}
	routed := routeGreedy(sites, sets, 1)

	// Slot 0: the 80 USD gap beats the 5 USD penalty, so the expensive
	// site exports until the cheap site hits its 2 MWh routing cap.
	if got := routed[0][0]; math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("cheap site slot 0 routed %g, want 2 (cap-bound import)", got)
	}
	if got := routed[1][0]; math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("dear site slot 0 routed %g, want 0.5", got)
	}
	// Slot 1: equal prices, no gap, nothing moves.
	if routed[0][1] != 1.0 || routed[1][1] != 1.5 {
		t.Fatalf("slot 1 moved demand without a price gap: %g, %g", routed[0][1], routed[1][1])
	}
	// Conservation in every slot.
	for i := 0; i < 2; i++ {
		home := sets[0].DemandDS.At(i) + sets[1].DemandDS.At(i)
		got := routed[0][i] + routed[1][i]
		if math.Abs(home-got) > 1e-9 {
			t.Fatalf("slot %d demand not conserved: %g vs %g", i, got, home)
		}
	}
}

func TestGreedyRespectsProhibitivePenalty(t *testing.T) {
	sites := []SiteSpec{
		{Name: "cheap", RouteCapMW: 10, ImportPenaltyUSDPerMWh: 500},
		{Name: "dear", RouteCapMW: 10, ImportPenaltyUSDPerMWh: 500},
	}
	sets := []*trace.Set{
		routerSet([]float64{1.0}, []float64{20}),
		routerSet([]float64{1.5}, []float64{100}),
	}
	routed := routeGreedy(sites, sets, 1)
	if routed[0][0] != 1.0 || routed[1][0] != 1.5 {
		t.Fatalf("penalty above the price gap still moved demand: %g, %g", routed[0][0], routed[1][0])
	}
}

func TestGreedyOrderIsDeterministicOnPriceTies(t *testing.T) {
	// Three equally cheap importers: the exporter must fill them in site
	// order (index tie-break), not map order or arrival order.
	sites := []SiteSpec{
		{Name: "a", RouteCapMW: 1.2, ImportPenaltyUSDPerMWh: 1},
		{Name: "b", RouteCapMW: 1.2, ImportPenaltyUSDPerMWh: 1},
		{Name: "c", RouteCapMW: 1.2, ImportPenaltyUSDPerMWh: 1},
		{Name: "x", RouteCapMW: 10, ImportPenaltyUSDPerMWh: 1},
	}
	sets := []*trace.Set{
		routerSet([]float64{1.0}, []float64{20}),
		routerSet([]float64{1.0}, []float64{20}),
		routerSet([]float64{1.0}, []float64{20}),
		routerSet([]float64{0.5}, []float64{100}),
	}
	routed := routeGreedy(sites, sets, 1)
	// 0.5 MWh exportable; each importer has 0.2 MWh spare under its
	// cap, so a and b fill to their caps in index order and c takes the
	// final 0.1.
	if math.Abs(routed[0][0]-1.2) > 1e-9 {
		t.Fatalf("site a routed %g, want 1.2", routed[0][0])
	}
	if math.Abs(routed[1][0]-1.2) > 1e-9 {
		t.Fatalf("site b routed %g, want 1.2", routed[1][0])
	}
	if math.Abs(routed[2][0]-1.1) > 1e-9 {
		t.Fatalf("site c routed %g, want 1.1", routed[2][0])
	}
	if math.Abs(routed[3][0]-0.0) > 1e-9 {
		t.Fatalf("site x routed %g, want 0", routed[3][0])
	}
}

func TestGreedySingleSiteIsIdentity(t *testing.T) {
	sites := []SiteSpec{{Name: "solo", RouteCapMW: 2, ImportPenaltyUSDPerMWh: 5}}
	sets := []*trace.Set{routerSet([]float64{1.0, 0.5}, []float64{20, 100})}
	routed := routeGreedy(sites, sets, 1)
	for i, v := range routed[0] {
		if v != sets[0].DemandDS.At(i) {
			t.Fatalf("slot %d: single-site routing changed demand: %g", i, v)
		}
	}
}
