// Package geo lifts the single-site supply engine into a geo-distributed
// fleet: N sites, each with its own engine options and traces, stepped in
// lockstep through one shared slot clock and coupled by a front end that
// routes delay-sensitive request traffic between pricing regions (the
// workload-modulation formulation of arXiv:1308.0585 grafted onto the
// paper's two-timescale supply controller).
//
// The package is built so that today's single-site paths are exactly the
// one-site special case: a one-site Run with RouterNone feeds the
// generated traces to the engine unmodified and produces byte-identical
// reports to engine.Simulate. Multi-site steps shard across goroutines —
// one per site, drawn from the suite's shared worker budget — behind a
// deterministic index-ordered reduce, so the output is byte-identical at
// every parallelism level.
//
// Routing has two arms. The greedy router is the online arm: per slot it
// observes only that slot's real-time prices and home demands, and moves
// load from the most expensive site to cheaper ones while the price gap
// exceeds the importer's latency penalty. The LP router is the
// offline/lookahead arm: one coupled routing+supply staircase LP over
// the whole horizon (baseline.SolveGeoHorizon) whose routing projection
// is replayed through each site's own controller.
package geo

import (
	"errors"
	"fmt"

	"github.com/smartdpss/smartdpss/internal/baseline"
	"github.com/smartdpss/smartdpss/internal/engine"
	"github.com/smartdpss/smartdpss/internal/trace"
)

// SiteSpec declares one site of the fleet: its supply-side engine
// options, its trace scope, and the routing constraints the front end
// applies to it.
type SiteSpec struct {
	// Name labels the site in results.
	Name string
	// Options is the site's engine configuration.
	Options engine.Options
	// Trace is the site's trace request; per-site seeds and price scales
	// are the knobs that make sites diverge.
	Trace engine.TraceConfig
	// RouteCapMW caps the site's post-routing delay-sensitive demand in
	// MW. Zero defaults to Options.PeakMW; negative is invalid.
	RouteCapMW float64
	// ImportPenaltyUSDPerMWh is the latency-penalty price of serving a
	// request away from its home region, charged per imported MWh.
	ImportPenaltyUSDPerMWh float64
}

// Router selects the workload-routing arm.
type Router string

const (
	// RouterNone disables routing: every site serves its home demand.
	// The traces pass through unmodified, which is what pins the
	// one-site case byte-identical to the single-site engine.
	RouterNone Router = "none"
	// RouterGreedy is the online arm: per-slot price-ordered moves
	// using only that slot's observables.
	RouterGreedy Router = "greedy"
	// RouterLP is the offline arm: the coupled routing+supply LP over
	// the whole horizon.
	RouterLP Router = "lp"
)

// Config scopes one geo run.
type Config struct {
	// Sites is the fleet, in fixed result order. All sites must share
	// Days and SlotMinutes.
	Sites []SiteSpec
	// Policy is the per-site supply policy (every engine policy works;
	// the offline benchmarks see the post-routing demand).
	Policy engine.Policy
	// Router selects the routing arm (default RouterNone).
	Router Router
	// Parallel bounds the per-site worker fan-out (0 means GOMAXPROCS).
	Parallel int
	// Tokens, when non-nil, is a shared spawn budget (suite.Config's
	// SpawnBudget): extra workers beyond the stepping goroutine are
	// spawned only while a token is available, so geo fan-out nests
	// inside suite.Map without multiplying the global parallelism.
	Tokens chan struct{}
}

// SiteResult is one site's slice of the run.
type SiteResult struct {
	Name   string
	Report *engine.Report
	// ImportedMWh and ExportedMWh total the demand routed to and away
	// from the site; PenaltyUSD prices the imports.
	ImportedMWh float64
	ExportedMWh float64
	PenaltyUSD  float64
}

// Result aggregates a geo run. TotalCostUSD sums the per-site supply
// costs; RoutingPenaltyUSD is kept separate (like the report's peak
// charge) so the supply costs stay comparable across routers.
type Result struct {
	Policy engine.Policy
	Router Router
	Sites  []SiteResult
	Slots  int

	TotalCostUSD      float64
	TimeAvgCostUSD    float64
	RoutingPenaltyUSD float64
	// MovedMWh is the total demand that changed sites.
	MovedMWh float64
	// PeakGridMW is the fleet-level aggregate grid peak: the maximum
	// over slots of the summed per-site grid draw, which no per-site
	// report can reconstruct.
	PeakGridMW float64
	// PeakBacklogMWh is the fleet-level aggregate backlog peak.
	PeakBacklogMWh float64
	UnservedMWh    float64
}

// Run executes the geo fleet: generates per-site traces, precomputes
// routing for the whole horizon, steps every site's session in lockstep
// through the sharded stepper, and reduces in fixed site order.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Sites) == 0 {
		return nil, errors.New("geo: no sites configured")
	}
	router := cfg.Router
	if router == "" {
		router = RouterNone
	}
	switch router {
	case RouterNone, RouterGreedy, RouterLP:
	default:
		return nil, fmt.Errorf("geo: unknown router %q", router)
	}
	days := cfg.Sites[0].Trace.Days
	for s := range cfg.Sites {
		if cfg.Sites[s].Trace.Days != days {
			return nil, fmt.Errorf("geo: site %d has %d days, want %d", s, cfg.Sites[s].Trace.Days, days)
		}
		if cfg.Sites[s].Trace.SlotMinutes != cfg.Sites[0].Trace.SlotMinutes {
			return nil, fmt.Errorf("geo: site %d slot length differs from site 0", s)
		}
		if cfg.Sites[s].RouteCapMW < 0 {
			return nil, fmt.Errorf("geo: site %d has negative RouteCapMW", s)
		}
		if cfg.Sites[s].ImportPenaltyUSDPerMWh < 0 {
			return nil, fmt.Errorf("geo: site %d has negative ImportPenaltyUSDPerMWh", s)
		}
	}

	n := len(cfg.Sites)
	traces := make([]*engine.Traces, n)
	sets := make([]*trace.Set, n)
	for s := range cfg.Sites {
		tr, err := engine.GenerateTraces(cfg.Sites[s].Trace)
		if err != nil {
			return nil, fmt.Errorf("geo: site %d: %w", s, err)
		}
		traces[s] = tr
		sets[s] = tr.Set()
	}
	H := sets[0].Horizon()
	slotMinutes := sets[0].DemandDS.SlotMinutes
	for s := 1; s < n; s++ {
		if sets[s].Horizon() != H {
			return nil, fmt.Errorf("geo: site %d horizon %d, want %d", s, sets[s].Horizon(), H)
		}
	}
	slotHours := float64(slotMinutes) / 60

	// Routing is precomputed for the whole horizon before any session
	// steps: the greedy arm is per-slot online (it reads only slot-τ
	// observables), the LP arm is clairvoyant, and RouterNone is nil —
	// the zero-copy passthrough that keeps legacy runs byte-identical.
	var routedDS [][]float64
	var err error
	switch router {
	case RouterNone:
	case RouterGreedy:
		routedDS = routeGreedy(cfg.Sites, sets, slotHours)
	case RouterLP:
		routedDS, err = routeLP(cfg.Sites, sets, slotHours)
		if err != nil {
			return nil, err
		}
	}

	sessions := make([]*engine.Session, n)
	imported := make([]float64, n)
	exported := make([]float64, n)
	for s := range cfg.Sites {
		siteTraces := traces[s]
		if routedDS != nil {
			moved := false
			for i := 0; i < H; i++ {
				home := sets[s].DemandDS.At(i)
				delta := routedDS[s][i] - home
				if delta > 0 {
					imported[s] += delta
					moved = true
				} else if delta < 0 {
					exported[s] -= delta
					moved = true
				}
			}
			if moved {
				series := trace.FromValues(
					sets[s].DemandDS.Name, sets[s].DemandDS.Unit, slotMinutes, routedDS[s])
				routedSet, err := sets[s].WithDemandDS(series)
				if err != nil {
					return nil, fmt.Errorf("geo: site %d: %w", s, err)
				}
				siteTraces = engine.TracesFromSet(routedSet)
			}
		}
		sess, err := engine.NewReplaySession(cfg.Policy, cfg.Sites[s].Options, siteTraces)
		if err != nil {
			return nil, fmt.Errorf("geo: site %d: %w", s, err)
		}
		sessions[s] = sess
	}

	st := newStepper(sessions, cfg.Parallel, cfg.Tokens)
	defer st.close()
	res := &Result{
		Policy: cfg.Policy,
		Router: router,
		Sites:  make([]SiteResult, n),
		Slots:  H,
	}
	for i := 0; i < H; i++ {
		if err := st.step(); err != nil {
			return nil, err
		}
		grid, backlog := 0.0, 0.0
		for s := range st.outs {
			grid += st.outs[s].GridMWh
			backlog += st.outs[s].BacklogAfter
		}
		if mw := grid / slotHours; mw > res.PeakGridMW {
			res.PeakGridMW = mw
		}
		if backlog > res.PeakBacklogMWh {
			res.PeakBacklogMWh = backlog
		}
	}

	for s := range sessions {
		rep, err := sessions[s].Finish()
		if err != nil {
			return nil, fmt.Errorf("geo: site %d: %w", s, err)
		}
		penalty := cfg.Sites[s].ImportPenaltyUSDPerMWh * imported[s]
		res.Sites[s] = SiteResult{
			Name:        cfg.Sites[s].Name,
			Report:      rep,
			ImportedMWh: imported[s],
			ExportedMWh: exported[s],
			PenaltyUSD:  penalty,
		}
		res.TotalCostUSD += rep.TotalCostUSD
		res.RoutingPenaltyUSD += penalty
		res.MovedMWh += imported[s]
		res.UnservedMWh += rep.UnservedMWh
	}
	res.TimeAvgCostUSD = res.TotalCostUSD / float64(H)
	return res, nil
}

// routeCapMWh resolves a site's per-slot routing capacity in MWh (0
// means uncapped, matching the LP's convention).
func routeCapMWh(site *SiteSpec, slotHours float64) float64 {
	capMW := site.RouteCapMW
	if capMW == 0 {
		capMW = site.Options.PeakMW
	}
	return capMW * slotHours
}

// routeLP runs the coupled routing+supply LP and returns its routing
// projection.
func routeLP(sites []SiteSpec, sets []*trace.Set, slotHours float64) ([][]float64, error) {
	geoSites := make([]baseline.GeoSite, len(sites))
	for s := range sites {
		geoSites[s] = baseline.GeoSite{
			Config:           sites[s].Options.BaselineConfig(),
			Set:              sets[s],
			ImportPenaltyUSD: sites[s].ImportPenaltyUSDPerMWh,
			RouteCapMWh:      routeCapMWh(&sites[s], slotHours),
		}
	}
	plan, err := baseline.SolveGeoHorizon(geoSites)
	if err != nil {
		return nil, fmt.Errorf("geo: routing LP: %w", err)
	}
	return plan.RoutedDS, nil
}
