package trace

import (
	"errors"
	"fmt"
)

// Set bundles the five input series a DPSS simulation consumes. All series
// are at fine-slot resolution; the controller samples PriceLT at
// coarse-slot starts (the long-term-ahead market of Sec. II-A).
type Set struct {
	// DemandDS is the delay-sensitive energy demand dds(τ) in MWh per slot.
	DemandDS *Series
	// DemandDT is the delay-tolerant energy demand ddt(τ) in MWh per slot.
	DemandDT *Series
	// Renewable is the on-site renewable production r(τ) in MWh per slot.
	Renewable *Series
	// PriceLT is the long-term-ahead market price plt in USD/MWh.
	PriceLT *Series
	// PriceRT is the real-time market price prt in USD/MWh.
	PriceRT *Series
	// FuelScale is an optional sixth series: a per-slot multiplier on
	// every on-site generation unit's fuel cost curve (dimensionless;
	// 1.0 is the configured curve). Nil means a constant 1 — the static
	// fuel price of configurations without a fuel market — and keeps
	// fuel-trace-free runs byte-identical to earlier versions. Grid
	// prices are never touched by this series (they have PriceScale).
	FuelScale *Series
}

// FuelScaleAt returns the fuel-price multiplier for the slot (1 when no
// fuel series is configured).
func (s *Set) FuelScaleAt(slot int) float64 {
	if s.FuelScale == nil {
		return 1
	}
	return s.FuelScale.At(slot)
}

// Horizon returns the number of fine slots covered by the set.
func (s *Set) Horizon() int {
	if s.DemandDS == nil {
		return 0
	}
	return s.DemandDS.Len()
}

// all returns the series in a fixed order for uniform processing.
func (s *Set) all() []*Series {
	return []*Series{s.DemandDS, s.DemandDT, s.Renewable, s.PriceLT, s.PriceRT}
}

// Validate checks presence, equal lengths, matching slot sizes,
// finiteness, and non-negativity of all series.
func (s *Set) Validate() error {
	names := []string{"DemandDS", "DemandDT", "Renewable", "PriceLT", "PriceRT"}
	series := s.all()
	for i, sr := range series {
		if sr == nil {
			return fmt.Errorf("trace: set is missing %s", names[i])
		}
	}
	n := series[0].Len()
	slot := series[0].SlotMinutes
	if n == 0 {
		return errors.New("trace: set has zero horizon")
	}
	for i, sr := range series {
		if err := sr.Validate(); err != nil {
			return err
		}
		if sr.Len() != n {
			return fmt.Errorf("trace: %s has %d slots, want %d", names[i], sr.Len(), n)
		}
		if sr.SlotMinutes != slot {
			return fmt.Errorf("trace: %s has %d-minute slots, want %d", names[i], sr.SlotMinutes, slot)
		}
		if sr.Min() < 0 {
			return fmt.Errorf("trace: %s has negative samples", names[i])
		}
	}
	if fs := s.FuelScale; fs != nil {
		if err := fs.Validate(); err != nil {
			return err
		}
		if fs.Len() != n {
			return fmt.Errorf("trace: FuelScale has %d slots, want %d", fs.Len(), n)
		}
		if fs.SlotMinutes != slot {
			return fmt.Errorf("trace: FuelScale has %d-minute slots, want %d", fs.SlotMinutes, slot)
		}
		if fs.Min() < 0 {
			return errors.New("trace: FuelScale has negative samples")
		}
	}
	return nil
}

// Clone deep-copies the whole set.
func (s *Set) Clone() *Set {
	return s.CloneInto(nil)
}

// CloneInto deep-copies the whole set into dst, reusing dst's series
// storage where the shapes allow, and returns dst (freshly allocated
// when nil). Sweep engines use it to recycle one buffer set across many
// sweep points instead of allocating a full deep copy per point.
func (s *Set) CloneInto(dst *Set) *Set {
	if dst == nil {
		dst = &Set{}
	}
	dst.DemandDS = s.DemandDS.CopyInto(dst.DemandDS)
	dst.DemandDT = s.DemandDT.CopyInto(dst.DemandDT)
	dst.Renewable = s.Renewable.CopyInto(dst.Renewable)
	dst.PriceLT = s.PriceLT.CopyInto(dst.PriceLT)
	dst.PriceRT = s.PriceRT.CopyInto(dst.PriceRT)
	if s.FuelScale != nil {
		dst.FuelScale = s.FuelScale.CopyInto(dst.FuelScale)
	} else {
		dst.FuelScale = nil
	}
	return dst
}

// WithDemandDS returns a shallow copy of the set with the delay-sensitive
// demand series replaced. Every other series is shared with the receiver,
// so a router that reassigns demand across sites pays one new series per
// site, not a deep copy of the whole set. The replacement must match the
// set's horizon and slot length.
func (s *Set) WithDemandDS(ds *Series) (*Set, error) {
	if ds == nil {
		return nil, errors.New("trace: nil replacement DemandDS")
	}
	if ds.Len() != s.Horizon() {
		return nil, fmt.Errorf("trace: replacement DemandDS has %d slots, want %d", ds.Len(), s.Horizon())
	}
	if s.DemandDS != nil && ds.SlotMinutes != s.DemandDS.SlotMinutes {
		return nil, fmt.Errorf("trace: replacement DemandDS has %d-minute slots, want %d",
			ds.SlotMinutes, s.DemandDS.SlotMinutes)
	}
	out := *s
	out.DemandDS = ds
	return &out, nil
}

// ScaleSystem multiplies demand and renewable by β, modelling the system
// expansion scenario of Sec. V-C (d(β,t) = βd(t), r(β,t) = βr(t)); prices
// are left unchanged. It returns the receiver.
func (s *Set) ScaleSystem(beta float64) *Set {
	s.DemandDS.Scale(beta)
	s.DemandDT.Scale(beta)
	s.Renewable.Scale(beta)
	return s
}

// ScaleDemandVariation stretches both demand series around their means by
// factor k (k > 1 increases the standard deviation, k < 1 flattens),
// clipping at zero. Used for the demand-variation axis of Fig. 8; the mean
// is preserved up to clipping.
func (s *Set) ScaleDemandVariation(k float64) error {
	if k < 0 {
		return fmt.Errorf("trace: negative variation factor %g", k)
	}
	for _, sr := range []*Series{s.DemandDS, s.DemandDT} {
		mean := sr.Mean()
		for i, v := range sr.Values {
			nv := mean + k*(v-mean)
			if nv < 0 {
				nv = 0
			}
			sr.Values[i] = nv
		}
	}
	return nil
}

// TotalDemand returns a new series dds+ddt.
func (s *Set) TotalDemand() *Series {
	out := s.DemandDS.Clone()
	out.Name = "demand_total"
	if _, err := out.AddSeries(s.DemandDT); err != nil {
		// Lengths are validated elsewhere; an error here is a programming bug.
		panic(err)
	}
	return out
}

// RenewablePenetration returns Σr / Σd, the fraction of total demand that
// the on-site renewable production could cover (Fig. 8's x-axis).
func (s *Set) RenewablePenetration() float64 {
	d := s.DemandDS.Sum() + s.DemandDT.Sum()
	if d == 0 {
		return 0
	}
	return s.Renewable.Sum() / d
}

// SetPenetration rescales the renewable series so that
// RenewablePenetration() == target. A zero-sum renewable series cannot be
// rescaled and produces an error.
func (s *Set) SetPenetration(target float64) error {
	if target < 0 {
		return fmt.Errorf("trace: negative penetration %g", target)
	}
	cur := s.RenewablePenetration()
	if cur == 0 {
		if target == 0 {
			return nil
		}
		return errors.New("trace: cannot scale an all-zero renewable series")
	}
	s.Renewable.Scale(target / cur)
	return nil
}
