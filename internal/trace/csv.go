package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes the series side by side as CSV with a header row of
// "name (unit)" columns preceded by a slot index column. All series must
// share the same length.
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return fmt.Errorf("trace: no series to write")
	}
	n := series[0].Len()
	for _, s := range series {
		if s.Len() != n {
			return fmt.Errorf("trace: series %q length %d, want %d", s.Name, s.Len(), n)
		}
	}
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(series)+1)
	header = append(header, "slot")
	for _, s := range series {
		header = append(header, fmt.Sprintf("%s (%s)", s.Name, s.Unit))
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	row := make([]string, len(series)+1)
	for i := 0; i < n; i++ {
		row[0] = strconv.Itoa(i)
		for j, s := range series {
			row[j+1] = strconv.FormatFloat(s.Values[i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses CSV produced by WriteCSV, reconstructing names and units
// from the header. slotMinutes is supplied by the caller because the CSV
// format does not carry it.
func ReadCSV(r io.Reader, slotMinutes int) ([]*Series, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(records) < 1 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	header := records[0]
	if len(header) < 2 || header[0] != "slot" {
		return nil, fmt.Errorf("trace: malformed header %v", header)
	}
	nSeries := len(header) - 1
	out := make([]*Series, nSeries)
	for j := 0; j < nSeries; j++ {
		name, unit := splitHeader(header[j+1])
		out[j] = New(name, unit, slotMinutes, len(records)-1)
	}
	for i, rec := range records[1:] {
		if len(rec) != nSeries+1 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want %d", i, len(rec), nSeries+1)
		}
		for j := 0; j < nSeries; j++ {
			v, err := strconv.ParseFloat(rec[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d col %d: %w", i, j, err)
			}
			out[j].Values[i] = v
		}
	}
	return out, nil
}

// splitHeader parses "name (unit)" into its parts; a missing unit yields "".
func splitHeader(h string) (name, unit string) {
	open := strings.LastIndex(h, " (")
	if open < 0 || !strings.HasSuffix(h, ")") {
		return h, ""
	}
	return h[:open], h[open+2 : len(h)-1]
}
