package trace

import (
	"math"
	"testing"
)

func testSet(n int) *Set {
	mk := func(name string, base float64) *Series {
		s := New(name, "MWh", 60, n)
		for i := range s.Values {
			s.Values[i] = base + float64(i%3)
		}
		return s
	}
	return &Set{
		DemandDS:  mk("demand_ds", 1),
		DemandDT:  mk("demand_dt", 0.5),
		Renewable: mk("renewable", 0.2),
		PriceLT:   mk("price_lt", 30),
		PriceRT:   mk("price_rt", 40),
	}
}

func TestSetValidate(t *testing.T) {
	s := testSet(10)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	if s.Horizon() != 10 {
		t.Errorf("Horizon = %d, want 10", s.Horizon())
	}
}

func TestSetValidateRejects(t *testing.T) {
	t.Run("missing series", func(t *testing.T) {
		s := testSet(5)
		s.PriceRT = nil
		if err := s.Validate(); err == nil {
			t.Error("want error for missing series")
		}
	})
	t.Run("length mismatch", func(t *testing.T) {
		s := testSet(5)
		s.Renewable = New("renewable", "MWh", 60, 4)
		if err := s.Validate(); err == nil {
			t.Error("want error for length mismatch")
		}
	})
	t.Run("slot mismatch", func(t *testing.T) {
		s := testSet(5)
		s.Renewable = New("renewable", "MWh", 30, 5)
		if err := s.Validate(); err == nil {
			t.Error("want error for slot-size mismatch")
		}
	})
	t.Run("negative values", func(t *testing.T) {
		s := testSet(5)
		s.DemandDS.Values[0] = -1
		if err := s.Validate(); err == nil {
			t.Error("want error for negative demand")
		}
	})
	t.Run("zero horizon", func(t *testing.T) {
		s := testSet(0)
		if err := s.Validate(); err == nil {
			t.Error("want error for zero horizon")
		}
	})
	t.Run("nan", func(t *testing.T) {
		s := testSet(5)
		s.PriceLT.Values[1] = math.NaN()
		if err := s.Validate(); err == nil {
			t.Error("want error for NaN")
		}
	})
}

func TestSetCloneIndependent(t *testing.T) {
	s := testSet(4)
	c := s.Clone()
	c.DemandDS.Values[0] = 99
	if s.DemandDS.Values[0] == 99 {
		t.Error("Clone must deep copy")
	}
}

func TestSetScaleSystem(t *testing.T) {
	s := testSet(6)
	dBefore := s.DemandDS.Sum() + s.DemandDT.Sum()
	rBefore := s.Renewable.Sum()
	pBefore := s.PriceRT.Sum()
	s.ScaleSystem(2)
	if got := s.DemandDS.Sum() + s.DemandDT.Sum(); math.Abs(got-2*dBefore) > 1e-9 {
		t.Errorf("demand sum after scale = %g, want %g", got, 2*dBefore)
	}
	if got := s.Renewable.Sum(); math.Abs(got-2*rBefore) > 1e-9 {
		t.Errorf("renewable sum after scale = %g, want %g", got, 2*rBefore)
	}
	if got := s.PriceRT.Sum(); got != pBefore {
		t.Errorf("prices must not scale: %g vs %g", got, pBefore)
	}
}

func TestSetTotalDemand(t *testing.T) {
	s := testSet(4)
	total := s.TotalDemand()
	for i := 0; i < 4; i++ {
		want := s.DemandDS.Values[i] + s.DemandDT.Values[i]
		if total.Values[i] != want {
			t.Fatalf("TotalDemand[%d] = %g, want %g", i, total.Values[i], want)
		}
	}
}

func TestSetPenetration(t *testing.T) {
	s := testSet(9)
	if err := s.SetPenetration(0.5); err != nil {
		t.Fatal(err)
	}
	if got := s.RenewablePenetration(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("penetration = %g, want 0.5", got)
	}
	if err := s.SetPenetration(-1); err == nil {
		t.Error("want error for negative target")
	}
	zero := testSet(3)
	zero.Renewable = New("renewable", "MWh", 60, 3)
	if err := zero.SetPenetration(0.5); err == nil {
		t.Error("want error for zero renewable")
	}
	if err := zero.SetPenetration(0); err != nil {
		t.Errorf("zero target on zero series should succeed: %v", err)
	}
}
