package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	a := FromValues("demand_ds", "MWh", 60, []float64{1.5, 2.25, 0})
	b := FromValues("price_rt", "USD/MWh", 60, []float64{31.125, 0.001, 150})

	var buf bytes.Buffer
	if err := WriteCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	series, err := ReadCSV(&buf, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2", len(series))
	}
	if series[0].Name != "demand_ds" || series[0].Unit != "MWh" {
		t.Errorf("series[0] identity = %q (%q)", series[0].Name, series[0].Unit)
	}
	if series[1].Name != "price_rt" || series[1].Unit != "USD/MWh" {
		t.Errorf("series[1] identity = %q (%q)", series[1].Name, series[1].Unit)
	}
	for i := range a.Values {
		if series[0].Values[i] != a.Values[i] {
			t.Errorf("round trip a[%d] = %g, want %g", i, series[0].Values[i], a.Values[i])
		}
		if series[1].Values[i] != b.Values[i] {
			t.Errorf("round trip b[%d] = %g, want %g", i, series[1].Values[i], b.Values[i])
		}
	}
}

func TestCSVRoundTripPreservesPrecision(t *testing.T) {
	vals := []float64{math.Pi, 1e-17, 123456789.123456789}
	s := FromValues("x", "", 60, vals)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, 60)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if back[0].Values[i] != v {
			t.Errorf("precision lost at %d: %v != %v", i, back[0].Values[i], v)
		}
	}
}

func TestWriteCSVErrors(t *testing.T) {
	if err := WriteCSV(&bytes.Buffer{}); err == nil {
		t.Error("want error for no series")
	}
	a := New("a", "", 60, 2)
	b := New("b", "", 60, 3)
	if err := WriteCSV(&bytes.Buffer{}, a, b); err == nil {
		t.Error("want error for mismatched lengths")
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "time,a\n0,1\n"},
		{"no columns", "slot\n0\n"},
		{"bad float", "slot,a ()\n0,notanumber\n"},
		{"ragged", "slot,a (),b ()\n0,1\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in), 60); err == nil {
				t.Errorf("want error for %q", tt.in)
			}
		})
	}
}

func TestSplitHeader(t *testing.T) {
	tests := []struct {
		in, name, unit string
	}{
		{"demand (MWh)", "demand", "MWh"},
		{"price (USD/MWh)", "price", "USD/MWh"},
		{"plain", "plain", ""},
		{"odd (x", "odd (x", ""},
		{"two (a) (b)", "two (a)", "b"},
	}
	for _, tt := range tests {
		name, unit := splitHeader(tt.in)
		if name != tt.name || unit != tt.unit {
			t.Errorf("splitHeader(%q) = (%q, %q), want (%q, %q)", tt.in, name, unit, tt.name, tt.unit)
		}
	}
}
