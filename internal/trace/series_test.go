package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	s := FromValues("demand", "MWh", 60, []float64{1, 2, 3, 4})
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if got := s.At(2); got != 3 {
		t.Errorf("At(2) = %g, want 3", got)
	}
	if got := s.At(-1); got != 0 {
		t.Errorf("At(-1) = %g, want 0", got)
	}
	if got := s.At(4); got != 0 {
		t.Errorf("At(4) = %g, want 0", got)
	}
	if got := s.Sum(); got != 10 {
		t.Errorf("Sum = %g, want 10", got)
	}
	if got := s.Mean(); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %g, want 1", got)
	}
	if got := s.Max(); got != 4 {
		t.Errorf("Max = %g, want 4", got)
	}
}

func TestSeriesFromValuesCopies(t *testing.T) {
	src := []float64{1, 2}
	s := FromValues("x", "", 60, src)
	src[0] = 99
	if s.Values[0] != 1 {
		t.Error("FromValues must copy the input slice")
	}
}

func TestSeriesCloneIndependent(t *testing.T) {
	s := FromValues("x", "", 60, []float64{1, 2})
	c := s.Clone()
	c.Values[0] = 42
	if s.Values[0] != 1 {
		t.Error("Clone must not share backing storage")
	}
}

func TestSeriesScaleClip(t *testing.T) {
	s := FromValues("x", "", 60, []float64{1, -2, 5})
	s.Scale(2)
	want := []float64{2, -4, 10}
	for i, w := range want {
		if s.Values[i] != w {
			t.Fatalf("after Scale: Values[%d] = %g, want %g", i, s.Values[i], w)
		}
	}
	s.Clip(0, 6)
	want = []float64{2, 0, 6}
	for i, w := range want {
		if s.Values[i] != w {
			t.Fatalf("after Clip: Values[%d] = %g, want %g", i, s.Values[i], w)
		}
	}
}

func TestSeriesAddSeries(t *testing.T) {
	a := FromValues("a", "", 60, []float64{1, 2})
	b := FromValues("b", "", 60, []float64{10, 20})
	if _, err := a.AddSeries(b); err != nil {
		t.Fatal(err)
	}
	if a.Values[0] != 11 || a.Values[1] != 22 {
		t.Errorf("AddSeries result %v", a.Values)
	}
	short := FromValues("c", "", 60, []float64{1})
	if _, err := a.AddSeries(short); err == nil {
		t.Error("want length-mismatch error")
	}
}

func TestSeriesStdDev(t *testing.T) {
	s := FromValues("x", "", 60, []float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %g, want 2", got)
	}
	empty := New("e", "", 60, 0)
	if got := empty.StdDev(); got != 0 {
		t.Errorf("empty StdDev = %g, want 0", got)
	}
}

func TestSeriesSlice(t *testing.T) {
	s := FromValues("x", "", 60, []float64{0, 1, 2, 3, 4})
	sub, err := s.Slice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || sub.Values[0] != 1 || sub.Values[1] != 2 {
		t.Errorf("Slice = %v", sub.Values)
	}
	if _, err := s.Slice(3, 1); err == nil {
		t.Error("want error for inverted range")
	}
	if _, err := s.Slice(0, 6); err == nil {
		t.Error("want error for out-of-range")
	}
}

func TestSeriesCoarsen(t *testing.T) {
	s := FromValues("x", "MWh", 60, []float64{1, 3, 5, 7})
	mean, err := s.Coarsen(2, "mean")
	if err != nil {
		t.Fatal(err)
	}
	if mean.Values[0] != 2 || mean.Values[1] != 6 {
		t.Errorf("mean coarsen = %v", mean.Values)
	}
	if mean.SlotMinutes != 120 {
		t.Errorf("SlotMinutes = %d, want 120", mean.SlotMinutes)
	}
	sum, err := s.Coarsen(2, "sum")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Values[0] != 4 || sum.Values[1] != 12 {
		t.Errorf("sum coarsen = %v", sum.Values)
	}
	if _, err := s.Coarsen(3, "mean"); err == nil {
		t.Error("want error for non-divisible window")
	}
	if _, err := s.Coarsen(0, "mean"); err == nil {
		t.Error("want error for zero window")
	}
	if _, err := s.Coarsen(2, "median"); err == nil {
		t.Error("want error for unknown reducer")
	}
}

func TestSeriesValidate(t *testing.T) {
	good := FromValues("x", "", 60, []float64{1})
	if err := good.Validate(); err != nil {
		t.Errorf("valid series rejected: %v", err)
	}
	bad := FromValues("x", "", 60, []float64{math.NaN()})
	if err := bad.Validate(); err == nil {
		t.Error("want error for NaN sample")
	}
	inf := FromValues("x", "", 60, []float64{math.Inf(1)})
	if err := inf.Validate(); err == nil {
		t.Error("want error for Inf sample")
	}
	zeroSlot := FromValues("x", "", 0, []float64{1})
	if err := zeroSlot.Validate(); err == nil {
		t.Error("want error for zero slot duration")
	}
}

func TestPropertyScaleThenSumMatches(t *testing.T) {
	f := func(raw []float64, k float64) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			vals = append(vals, v)
		}
		if math.IsNaN(k) || math.IsInf(k, 0) || math.Abs(k) > 1e6 {
			k = 2
		}
		s := FromValues("x", "", 60, vals)
		before := s.Sum()
		s.Scale(k)
		after := s.Sum()
		return math.Abs(after-k*before) <= 1e-6*math.Max(1, math.Abs(k*before))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCoarsenPreservesSum(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			vals = append(vals, v)
		}
		// Truncate to a multiple of 4.
		vals = vals[:len(vals)/4*4]
		if len(vals) == 0 {
			return true
		}
		s := FromValues("x", "", 60, vals)
		c, err := s.Coarsen(4, "sum")
		if err != nil {
			return false
		}
		return math.Abs(c.Sum()-s.Sum()) <= 1e-6*math.Max(1, math.Abs(s.Sum()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
