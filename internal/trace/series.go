// Package trace provides the time-series substrate for the SmartDPSS
// evaluation: slot-indexed series, CSV import/export, resampling and
// summary statistics. All of the paper's evaluation (Sec. VI) is
// trace-driven; the synthetic generators in internal/solar,
// internal/pricing and internal/workload produce Series values defined
// here.
package trace

import (
	"errors"
	"fmt"
	"math"
)

// Series is a fixed-step time series. Index 0 is the first fine-grained
// slot of the simulation horizon.
type Series struct {
	// Name identifies the series (e.g. "demand_ds"); used as a CSV header.
	Name string
	// Unit documents the value unit (e.g. "MWh", "USD/MWh").
	Unit string
	// SlotMinutes is the duration of one slot in minutes.
	SlotMinutes int
	// Values holds one sample per slot.
	Values []float64
}

// New returns a zero-filled series of n slots.
func New(name, unit string, slotMinutes, n int) *Series {
	return &Series{Name: name, Unit: unit, SlotMinutes: slotMinutes, Values: make([]float64, n)}
}

// FromValues wraps the given samples (the slice is copied).
func FromValues(name, unit string, slotMinutes int, values []float64) *Series {
	v := make([]float64, len(values))
	copy(v, values)
	return &Series{Name: name, Unit: unit, SlotMinutes: slotMinutes, Values: v}
}

// Len reports the number of slots.
func (s *Series) Len() int { return len(s.Values) }

// At returns the sample at slot i, or 0 when i is out of range. The
// out-of-range behaviour lets controllers run past trace ends in tests
// without panicking; the simulator validates horizons up front.
func (s *Series) At(i int) float64 {
	if i < 0 || i >= len(s.Values) {
		return 0
	}
	return s.Values[i]
}

// Clone returns an independent deep copy.
func (s *Series) Clone() *Series {
	return FromValues(s.Name, s.Unit, s.SlotMinutes, s.Values)
}

// CopyInto deep-copies s into dst, reusing dst's sample storage when it
// is large enough, and returns dst (freshly allocated when nil). It is
// the caller-owned-buffer counterpart of Clone for sweep loops that
// clone many same-shape sets.
func (s *Series) CopyInto(dst *Series) *Series {
	if dst == nil {
		dst = &Series{}
	}
	dst.Name, dst.Unit, dst.SlotMinutes = s.Name, s.Unit, s.SlotMinutes
	dst.Values = append(dst.Values[:0], s.Values...)
	return dst
}

// Scale multiplies every sample by k in place and returns the receiver.
func (s *Series) Scale(k float64) *Series {
	for i := range s.Values {
		s.Values[i] *= k
	}
	return s
}

// Clip limits every sample to [lo, hi] in place and returns the receiver.
func (s *Series) Clip(lo, hi float64) *Series {
	for i, v := range s.Values {
		s.Values[i] = math.Min(hi, math.Max(lo, v))
	}
	return s
}

// AddSeries adds other element-wise in place and returns the receiver.
// The series must have equal length.
func (s *Series) AddSeries(other *Series) (*Series, error) {
	if other.Len() != s.Len() {
		return nil, fmt.Errorf("trace: length mismatch %d vs %d", s.Len(), other.Len())
	}
	for i := range s.Values {
		s.Values[i] += other.Values[i]
	}
	return s, nil
}

// Sum returns the total over all slots.
func (s *Series) Sum() float64 {
	total := 0.0
	for _, v := range s.Values {
		total += v
	}
	return total
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.Values))
}

// Min returns the smallest sample, or +Inf for an empty series.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.Values {
		m = math.Min(m, v)
	}
	return m
}

// Max returns the largest sample, or -Inf for an empty series.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.Values {
		m = math.Max(m, v)
	}
	return m
}

// StdDev returns the population standard deviation. The paper (Fig. 8) uses
// the same definition with uniform slot probabilities p_d(t) = 1/KT.
func (s *Series) StdDev() float64 {
	n := len(s.Values)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	acc := 0.0
	for _, v := range s.Values {
		d := v - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Slice returns a copy of slots [from, to).
func (s *Series) Slice(from, to int) (*Series, error) {
	if from < 0 || to > len(s.Values) || from > to {
		return nil, fmt.Errorf("trace: slice [%d, %d) out of range 0..%d", from, to, len(s.Values))
	}
	return FromValues(s.Name, s.Unit, s.SlotMinutes, s.Values[from:to]), nil
}

// Coarsen aggregates the series into windows of w slots using the given
// reducer ("mean" or "sum"). The series length must be a multiple of w.
func (s *Series) Coarsen(w int, reducer string) (*Series, error) {
	if w <= 0 {
		return nil, errors.New("trace: window must be positive")
	}
	if len(s.Values)%w != 0 {
		return nil, fmt.Errorf("trace: length %d not a multiple of window %d", len(s.Values), w)
	}
	n := len(s.Values) / w
	out := New(s.Name, s.Unit, s.SlotMinutes*w, n)
	for i := 0; i < n; i++ {
		acc := 0.0
		for j := 0; j < w; j++ {
			acc += s.Values[i*w+j]
		}
		switch reducer {
		case "sum":
			out.Values[i] = acc
		case "mean":
			out.Values[i] = acc / float64(w)
		default:
			return nil, fmt.Errorf("trace: unknown reducer %q", reducer)
		}
	}
	return out, nil
}

// Validate reports an error for NaN/Inf samples or a non-positive slot size.
func (s *Series) Validate() error {
	if s.SlotMinutes <= 0 {
		return fmt.Errorf("trace: %s has non-positive slot duration", s.Name)
	}
	for i, v := range s.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("trace: %s[%d] is %v", s.Name, i, v)
		}
	}
	return nil
}
