package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"github.com/smartdpss/smartdpss/internal/engine"
)

func shortTraces(t *testing.T, days int) *engine.Traces {
	t.Helper()
	tc := engine.DefaultTraceConfig()
	tc.Days = days
	traces, err := engine.GenerateTraces(tc)
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

func newDaemon(t *testing.T, traces *engine.Traces, cfg Config) *Daemon {
	t.Helper()
	sess, err := engine.NewReplaySession(engine.PolicySmartDPSS, engine.DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewReplaySource(traces)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Session = sess
	cfg.Source = src
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func reportJSON(t *testing.T, rep *engine.Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDaemonMatchesBatch: a full run through the daemon's ingest loop is
// the same computation as batch Simulate — the service mode inherits the
// byte-equivalence guarantee.
func TestDaemonMatchesBatch(t *testing.T) {
	traces := shortTraces(t, 7)
	want, err := engine.Simulate(engine.PolicySmartDPSS, engine.DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}

	d := newDaemon(t, traces, Config{})
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !d.Session().Done() {
		t.Fatalf("ingest stopped at slot %d of %d", d.Session().Slot(), d.Session().Horizon())
	}
	got, err := d.Session().Finish()
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, want) != reportJSON(t, got) {
		t.Error("daemon ingest run differs from batch Simulate")
	}
}

// interruptSource cancels the run's context after n observations — the
// test stand-in for a crash or SIGTERM mid-run.
type interruptSource struct {
	Source
	n      int
	cancel context.CancelFunc
}

func (s *interruptSource) Next(ctx context.Context) (Observation, error) {
	if s.n <= 0 {
		s.cancel()
		return Observation{}, ctx.Err()
	}
	s.n--
	return s.Source.Next(ctx)
}

// TestDaemonCrashRecovery: kill the daemon mid-run (context cancel after
// a final checkpoint), then restart from the checkpoint file; the
// completed run must match the uninterrupted one byte for byte.
func TestDaemonCrashRecovery(t *testing.T) {
	traces := shortTraces(t, 7)
	want, err := engine.Simulate(engine.PolicySmartDPSS, engine.DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "dpss.ckpt")

	// First incarnation: cancelled after 50 slots.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess1, err := engine.NewReplaySession(engine.PolicySmartDPSS, engine.DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}
	src1, err := NewReplaySource(traces)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := New(Config{
		Session:        sess1,
		Source:         &interruptSource{Source: src1, n: 50, cancel: cancel},
		CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d1.Resumed() {
		t.Error("fresh daemon claims to have resumed")
	}
	if err := d1.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	if d1.Checkpoints() == 0 {
		t.Fatal("no checkpoint written before the crash")
	}
	killedAt := sess1.Slot()
	if killedAt == 0 || killedAt >= traces.Horizon() {
		t.Fatalf("crash at slot %d is not mid-run", killedAt)
	}

	// Second incarnation: restores from the file and runs to completion.
	d2 := newDaemon(t, traces, Config{CheckpointPath: ckpt})
	if !d2.Resumed() {
		t.Fatal("restarted daemon did not resume from the checkpoint")
	}
	if d2.Session().Slot() != killedAt {
		t.Fatalf("resumed at slot %d, want %d", d2.Session().Slot(), killedAt)
	}
	if err := d2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := d2.Session().Finish()
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, want) != reportJSON(t, got) {
		t.Error("recovered run differs from uninterrupted run")
	}
}

// TestDaemonRejectsMisalignedSource: an ingest source that skips a slot
// must stop the daemon, not silently feed the wrong world.
func TestDaemonRejectsMisalignedSource(t *testing.T) {
	traces := shortTraces(t, 2)
	src, err := NewReplaySource(traces)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Seek(5); err != nil {
		t.Fatal(err)
	}
	sess, err := engine.NewReplaySession(engine.PolicySmartDPSS, engine.DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Session: sess, Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "slot") {
		t.Errorf("misaligned source: err = %v, want slot mismatch", err)
	}
}

func TestReplaySourceBounds(t *testing.T) {
	traces := shortTraces(t, 2)
	src, err := NewReplaySource(traces)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Seek(-1); err == nil {
		t.Error("negative seek accepted")
	}
	if err := src.Seek(traces.Horizon() + 1); err == nil {
		t.Error("seek past horizon accepted")
	}
	if err := src.Seek(traces.Horizon()); err != nil {
		t.Errorf("seek to horizon rejected: %v", err)
	}
	if _, err := src.Next(context.Background()); !errors.Is(err, io.EOF) {
		t.Errorf("drained source: err = %v, want io.EOF", err)
	}
	if _, err := NewReplaySource(nil); err == nil {
		t.Error("nil traces accepted")
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := src.Seek(0); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(cancelled); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Next: err = %v", err)
	}
}

func TestNewDaemonValidation(t *testing.T) {
	traces := shortTraces(t, 2)
	src, _ := NewReplaySource(traces)
	sess, err := engine.NewReplaySession(engine.PolicySmartDPSS, engine.DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Source: src}); err == nil {
		t.Error("nil session accepted")
	}
	if _, err := New(Config{Session: sess}); err == nil {
		t.Error("nil source accepted")
	}
}

// TestExpositionValidates: the daemon's own exposition must pass the
// OpenMetrics validator and carry the headline families.
func TestExpositionValidates(t *testing.T) {
	traces := shortTraces(t, 2)
	d := newDaemon(t, traces, Config{})
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteExposition(&buf, d.snapshotMetrics()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("self-exposition invalid: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		"smartdpss_slots_total 48",
		`smartdpss_session_info{policy="smartdpss"`,
		`smartdpss_cost_usd_total{component="longterm"}`,
		`smartdpss_energy_mwh_total{source="renewable"}`,
		"smartdpss_backlog_mwh ",
		"smartdpss_lp_failures_total ",
		"# EOF\n",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestHandlerEndpoints drives the HTTP surface end to end.
func TestHandlerEndpoints(t *testing.T) {
	traces := shortTraces(t, 2)
	d := newDaemon(t, traces, Config{})
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	t.Run("metrics", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if got := resp.Header.Get("Content-Type"); got != ContentType {
			t.Errorf("Content-Type = %q, want %q", got, ContentType)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateExposition(body); err != nil {
			t.Errorf("served exposition invalid: %v", err)
		}
	})
	t.Run("healthz", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if string(body) != "ok\n" {
			t.Errorf("healthz = %q", body)
		}
	})
	t.Run("status", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st struct {
			Policy string               `json:"policy"`
			Status engine.SessionStatus `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.Policy != "smartdpss" {
			t.Errorf("policy = %q", st.Policy)
		}
		if st.Status.Slot != 48 {
			t.Errorf("slot = %d, want 48", st.Status.Slot)
		}
	})
}

// TestValidateExpositionRejects: the validator must catch the classic
// OpenMetrics malformations.
func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"missing EOF", "# TYPE a gauge\na 1\n"},
		{"no trailing newline", "# TYPE a gauge\na 1\n# EOF"},
		{"content after EOF", "# TYPE a gauge\na 1\n# EOF\na 2\n"},
		{"sample before TYPE", "a 1\n# EOF\n"},
		{"counter without _total", "# TYPE a counter\na 1\n# EOF\n"},
		{"gauge with _total of undeclared family", "# TYPE a gauge\nb_total 1\n# EOF\n"},
		{"non-float value", "# TYPE a gauge\na one\n# EOF\n"},
		{"bad metric name", "# TYPE a gauge\n1a 1\n# EOF\n"},
		{"unknown type", "# TYPE a widget\na 1\n# EOF\n"},
		{"duplicate TYPE", "# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF\n"},
		{"unterminated labels", "# TYPE a gauge\na{x=\"1\" 1\n# EOF\n"},
		{"unquoted label value", "# TYPE a gauge\na{x=1} 1\n# EOF\n"},
		{"blank line", "# TYPE a gauge\n\na 1\n# EOF\n"},
		{"interleaved families", "# TYPE a gauge\n# TYPE b gauge\na 1\nb 1\na 2\n# EOF\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidateExposition([]byte(tc.text)); err == nil {
				t.Errorf("accepted malformed exposition:\n%s", tc.text)
			}
		})
	}

	good := "# TYPE a gauge\n# HELP a help text\na{x=\"y\",z=\"w\"} 1.5\n" +
		"# TYPE b counter\nb_total 2\n# EOF\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("rejected well-formed exposition: %v", err)
	}
}

// TestPeriodicCheckpoints: the daemon writes on the configured cadence,
// not just at shutdown.
func TestPeriodicCheckpoints(t *testing.T) {
	traces := shortTraces(t, 2) // 48 slots
	ckpt := filepath.Join(t.TempDir(), "dpss.ckpt")
	d := newDaemon(t, traces, Config{CheckpointPath: ckpt, CheckpointEvery: 12})
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 48/12 periodic writes plus the final shutdown write.
	if got := d.Checkpoints(); got != 5 {
		t.Errorf("checkpoints = %d, want 5", got)
	}
}
