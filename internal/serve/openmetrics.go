package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// ValidateExposition checks that data is a well-formed OpenMetrics 1.0
// text exposition: `# TYPE` declared before a family's samples, sample
// names carrying the suffix their type requires (`_total` for counters,
// `_info` for info), float-parseable values, syntactically valid label
// sets, contiguous family blocks, and a final `# EOF` line with nothing
// after it. It is the shared gate of the unit tests and the serve-smoke
// CI script; it validates structure, not metric semantics.
func ValidateExposition(data []byte) error {
	text := string(data)
	if text == "" {
		return fmt.Errorf("openmetrics: empty exposition")
	}
	if !strings.HasSuffix(text, "\n") {
		return fmt.Errorf("openmetrics: exposition must end with a newline")
	}
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	if lines[len(lines)-1] != "# EOF" {
		return fmt.Errorf("openmetrics: last line is %q, want \"# EOF\"", lines[len(lines)-1])
	}

	types := map[string]string{} // family → type
	closed := map[string]bool{}  // families whose sample block has ended
	currentFamily := ""          // family of the sample block in progress
	sawEOF := false

	for i, line := range lines {
		lineNo := i + 1
		if sawEOF {
			return fmt.Errorf("openmetrics: line %d: content after # EOF", lineNo)
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if line == "" {
			return fmt.Errorf("openmetrics: line %d: blank line", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			if err := validateMeta(line, types); err != nil {
				return fmt.Errorf("openmetrics: line %d: %w", lineNo, err)
			}
			continue
		}
		family, err := validateSample(line, types)
		if err != nil {
			return fmt.Errorf("openmetrics: line %d: %w", lineNo, err)
		}
		if family != currentFamily {
			if closed[family] {
				return fmt.Errorf("openmetrics: line %d: samples of family %q are not contiguous", lineNo, family)
			}
			if currentFamily != "" {
				closed[currentFamily] = true
			}
			currentFamily = family
		}
	}
	return nil
}

// validateMeta checks a `# TYPE`/`# HELP`/`# UNIT` line and records TYPE
// declarations.
func validateMeta(line string, types map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q (want \"# TYPE|HELP|UNIT name ...\")", line)
	}
	keyword, name := fields[1], fields[2]
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric family name %q", name)
	}
	switch keyword {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("TYPE line for %q missing a type", name)
		}
		typ := fields[3]
		switch typ {
		case "counter", "gauge", "info", "stateset", "summary", "histogram", "gaugehistogram", "unknown":
		default:
			return fmt.Errorf("unknown metric type %q for family %q", typ, name)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE for family %q", name)
		}
		types[name] = typ
	case "HELP", "UNIT":
		// Free text / unit name; nothing further to check structurally.
	default:
		return fmt.Errorf("unknown comment keyword %q", keyword)
	}
	return nil
}

// validateSample checks one sample line and returns the family it
// belongs to.
func validateSample(line string, types map[string]string) (string, error) {
	name, rest := line, ""
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		name, rest = line[:i], line[i:]
	}
	if !validMetricName(name) {
		return "", fmt.Errorf("invalid sample name %q", name)
	}

	if strings.HasPrefix(rest, "{") {
		end, err := scanLabels(rest)
		if err != nil {
			return "", fmt.Errorf("sample %q: %w", name, err)
		}
		rest = rest[end:]
	}
	value := strings.TrimSpace(rest)
	// A timestamp may follow the value; both fields must parse as floats.
	for _, f := range strings.Fields(value) {
		if _, err := strconv.ParseFloat(f, 64); err != nil {
			return "", fmt.Errorf("sample %q: non-float field %q", name, f)
		}
	}
	if value == "" {
		return "", fmt.Errorf("sample %q has no value", name)
	}

	family, err := resolveFamily(name, types)
	if err != nil {
		return "", err
	}
	return family, nil
}

// resolveFamily maps a sample name to its declared family, enforcing the
// suffix rules of the declared type.
func resolveFamily(name string, types map[string]string) (string, error) {
	if typ, ok := types[name]; ok {
		switch typ {
		case "counter":
			return "", fmt.Errorf("counter family %q sample must use the _total suffix", name)
		case "info":
			return "", fmt.Errorf("info family %q sample must use the _info suffix", name)
		default:
			return name, nil
		}
	}
	for _, s := range []struct{ suffix, typ string }{
		{"_total", "counter"},
		{"_created", "counter"},
		{"_info", "info"},
		{"_bucket", "histogram"},
		{"_sum", "histogram"},
		{"_count", "histogram"},
	} {
		family, found := strings.CutSuffix(name, s.suffix)
		if !found {
			continue
		}
		typ, declared := types[family]
		if !declared {
			continue
		}
		switch {
		case typ == s.typ:
			return family, nil
		case s.suffix == "_sum" || s.suffix == "_count":
			// Shared by summary/histogram families.
			if typ == "summary" || typ == "gaugehistogram" {
				return family, nil
			}
		}
		return "", fmt.Errorf("sample %q: suffix %q not valid for %s family %q", name, s.suffix, typ, family)
	}
	return "", fmt.Errorf("sample %q has no preceding # TYPE declaration", name)
}

// scanLabels validates a `{name="value",...}` block starting at s[0] and
// returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && s[i] != '=' && s[i] != '}' && s[i] != ',' {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("label without '=' in %q", s)
		}
		if !validLabelName(s[start:i]) {
			return 0, fmt.Errorf("invalid label name %q", s[start:i])
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value must be quoted")
		}
		i++ // past opening quote
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++ // escape consumes the next byte
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
