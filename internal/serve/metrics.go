package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/smartdpss/smartdpss/internal/engine"
)

// ContentType is the OpenMetrics media type served on /metrics.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// MetricsSnapshot is one consistent scrape of the daemon: the session's
// live status plus the service-level counters, captured under the
// daemon's lock so every sample in an exposition describes the same slot.
type MetricsSnapshot struct {
	Policy      string
	Controller  string
	Status      engine.SessionStatus
	LPFailures  int
	Checkpoints uint64
}

// snapshotMetrics captures a consistent MetricsSnapshot.
func (d *Daemon) snapshotMetrics() MetricsSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return MetricsSnapshot{
		Policy:      string(d.sess.Policy()),
		Controller:  d.sess.ControllerName(),
		Status:      d.sess.Status(),
		LPFailures:  d.sess.LPFailures(),
		Checkpoints: d.checkpoints,
	}
}

// expositionWriter accumulates OpenMetrics families, tracking the first
// write error so call sites stay linear.
type expositionWriter struct {
	w   io.Writer
	err error
}

func (e *expositionWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// family emits the TYPE/HELP header for one metric family.
func (e *expositionWriter) family(name, typ, help string) {
	e.printf("# TYPE %s %s\n", name, typ)
	e.printf("# HELP %s %s\n", name, help)
}

// sample emits one sample line. labels is a preformatted `{...}` block
// or empty.
func (e *expositionWriter) sample(name, labels string, value float64) {
	e.printf("%s%s %s\n", name, labels, strconv.FormatFloat(value, 'g', -1, 64))
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteExposition renders the snapshot as OpenMetrics 1.0 text — TYPE
// before samples, counters with the _total suffix, `# EOF` terminator —
// exactly what ValidateExposition and promtool accept.
func WriteExposition(w io.Writer, m MetricsSnapshot) error {
	e := &expositionWriter{w: w}
	s := m.Status

	e.family("smartdpss_session", "info", "Policy and controller identity of the served session.")
	e.sample("smartdpss_session_info",
		fmt.Sprintf("{policy=%q,controller=%q}", escapeLabel(m.Policy), escapeLabel(m.Controller)), 1)

	e.family("smartdpss_slots", "counter", "Fine slots committed so far.")
	e.sample("smartdpss_slots_total", "", float64(s.Slot))

	e.family("smartdpss_horizon_slots", "gauge", "Total fine slots in the session horizon.")
	e.sample("smartdpss_horizon_slots", "", float64(s.Horizon))

	e.family("smartdpss_cost_usd", "counter", "Accumulated cost by component, USD.")
	for _, c := range []struct {
		component string
		value     float64
	}{
		{"longterm", s.LTCostUSD},
		{"realtime", s.RTCostUSD},
		{"battery_op", s.BatteryOpUSD},
		{"waste", s.WasteCostUSD},
		{"gen_fuel", s.GenFuelUSD},
		{"gen_startup", s.GenStartupUSD},
		{"emergency", s.EmergencyCostUSD},
	} {
		e.sample("smartdpss_cost_usd_total",
			fmt.Sprintf("{component=%q}", c.component), c.value)
	}

	e.family("smartdpss_total_cost_usd", "counter", "Accumulated total cost across all components, USD.")
	e.sample("smartdpss_total_cost_usd_total", "", s.TotalCostUSD)

	e.family("smartdpss_energy_mwh", "counter", "Accumulated energy by source or sink, MWh.")
	for _, c := range []struct {
		source string
		value  float64
	}{
		{"longterm", s.LTEnergyMWh},
		{"realtime", s.RTEnergyMWh},
		{"renewable", s.RenewableMWh},
		{"generation", s.GenEnergyMWh},
		{"served_dt", s.ServedDTMWh},
		{"waste", s.WasteMWh},
		{"unserved", s.UnservedMWh},
	} {
		e.sample("smartdpss_energy_mwh_total",
			fmt.Sprintf("{source=%q}", c.source), c.value)
	}

	e.family("smartdpss_co2_kg", "counter", "Accumulated on-site generation CO2, kg.")
	e.sample("smartdpss_co2_kg_total", "", s.GenCO2Kg)

	e.family("smartdpss_backlog_mwh", "gauge", "Delay-tolerant backlog currently queued, MWh.")
	e.sample("smartdpss_backlog_mwh", "", s.BacklogMWh)

	e.family("smartdpss_battery_mwh", "gauge", "Battery level, MWh.")
	e.sample("smartdpss_battery_mwh", "", s.BatteryMWh)

	e.family("smartdpss_battery_ops", "counter", "Battery charge/discharge operations.")
	e.sample("smartdpss_battery_ops_total", "", float64(s.BatteryOps))

	e.family("smartdpss_peak_grid_mw", "gauge", "Peak grid draw so far, MW.")
	e.sample("smartdpss_peak_grid_mw", "", s.PeakGridMW)

	e.family("smartdpss_unavailable_slots", "counter", "Slots with unserved delay-sensitive demand.")
	e.sample("smartdpss_unavailable_slots_total", "", float64(s.Unavailable))

	e.family("smartdpss_lp_failures", "counter", "LP solves that fell back to the closed form.")
	e.sample("smartdpss_lp_failures_total", "", float64(m.LPFailures))

	e.family("smartdpss_checkpoints", "counter", "Checkpoint files written.")
	e.sample("smartdpss_checkpoints_total", "", float64(m.Checkpoints))

	e.printf("# EOF\n")
	return e.err
}

// Handler returns the daemon's HTTP surface:
//
//	/metrics — OpenMetrics text exposition
//	/healthz — liveness probe, plain "ok"
//	/status  — engine.SessionStatus as JSON
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		m := d.snapshotMetrics()
		w.Header().Set("Content-Type", ContentType)
		if err := WriteExposition(w, m); err != nil {
			// Headers are gone; nothing to do but drop the connection.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		m := d.snapshotMetrics()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Policy      string               `json:"policy"`
			Controller  string               `json:"controller"`
			Checkpoints uint64               `json:"checkpoints"`
			LPFailures  int                  `json:"lpFailures"`
			Status      engine.SessionStatus `json:"status"`
		}{m.Policy, m.Controller, m.Checkpoints, m.LPFailures, m.Status})
	})
	return mux
}
