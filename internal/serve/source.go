// Package serve hosts the long-lived service layer of SmartDPSS: an
// ingest loop that drives a resumable engine.Session one slot at a time
// from a pluggable telemetry source, periodic on-disk checkpoints for
// crash recovery, and an HTTP surface exposing OpenMetrics text on
// /metrics plus JSON status. The daemon steps the exact same session
// machinery as batch Simulate, so a served run's report is byte-identical
// to the batch run over the same inputs.
package serve

import (
	"context"
	"fmt"
	"io"

	"github.com/smartdpss/smartdpss/internal/engine"
)

// Observation is one fine slot's worth of telemetry: the slot index it
// belongs to and the exogenous inputs the controller plans against.
type Observation struct {
	Slot  int              `json:"slot"`
	Input engine.SlotInput `json:"input"`
}

// Source supplies slot observations to the daemon's ingest loop. A
// replay source reads generated traces (below); live deployments plug in
// adapters that poll building telemetry (MQTT, SNMP, …) and block in
// Next until the next slot's data is complete.
//
// Next returns io.EOF when the source is drained; the daemon then stops
// cleanly. Seek repositions the source after a checkpoint restore so it
// resumes at the session's next slot.
type Source interface {
	Next(ctx context.Context) (Observation, error)
	Seek(slot int) error
	Close() error
}

// ReplaySource replays a generated trace set slot by slot — the ingest
// adapter used by tests, the smoke target and `dpss-serve` without live
// telemetry. It is not safe for concurrent use; the daemon calls it from
// a single goroutine.
type ReplaySource struct {
	traces *engine.Traces
	next   int
}

var _ Source = (*ReplaySource)(nil)

// NewReplaySource wraps traces as a Source starting at slot 0.
func NewReplaySource(traces *engine.Traces) (*ReplaySource, error) {
	if traces == nil {
		return nil, fmt.Errorf("serve: nil traces")
	}
	return &ReplaySource{traces: traces}, nil
}

// Next implements Source: it returns the next trace row, or io.EOF once
// the horizon is exhausted.
func (r *ReplaySource) Next(ctx context.Context) (Observation, error) {
	if err := ctx.Err(); err != nil {
		return Observation{}, err
	}
	if r.next >= r.traces.Horizon() {
		return Observation{}, io.EOF
	}
	obs := Observation{Slot: r.next, Input: r.traces.InputAt(r.next)}
	r.next++
	return obs, nil
}

// Seek implements Source.
func (r *ReplaySource) Seek(slot int) error {
	if slot < 0 || slot > r.traces.Horizon() {
		return fmt.Errorf("serve: seek slot %d outside horizon %d", slot, r.traces.Horizon())
	}
	r.next = slot
	return nil
}

// Close implements Source; replay holds no external resources.
func (r *ReplaySource) Close() error { return nil }
