package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/smartdpss/smartdpss/internal/engine"
)

// Config parameterizes a Daemon.
type Config struct {
	// Session is the resumable controller session the daemon drives.
	Session *engine.Session
	// Source feeds one observation per fine slot.
	Source Source
	// CheckpointPath, when non-empty, enables crash recovery: the daemon
	// restores from this file at construction if it exists, rewrites it
	// atomically every CheckpointEvery slots, and writes a final
	// checkpoint on shutdown.
	CheckpointPath string
	// CheckpointEvery is the number of committed slots between periodic
	// checkpoint writes (default 24 — once per simulated day at hourly
	// slots).
	CheckpointEvery int
	// Interval paces the ingest loop in wall-clock time between slots;
	// zero free-runs (replay and tests). Live adapters usually pace
	// themselves by blocking in Next instead.
	Interval time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Daemon is the long-lived service harness: it pulls observations from
// its Source, steps the session, checkpoints to disk, and serves the
// monitoring endpoints. Run drives the loop; Handler is safe to serve
// concurrently with it.
type Daemon struct {
	cfg Config

	mu          sync.Mutex
	sess        *engine.Session
	checkpoints uint64 // checkpoint files written
	resumed     bool   // whether New restored from an existing checkpoint
}

// New validates cfg and builds the daemon. If cfg.CheckpointPath names
// an existing file, the session is restored from it and the source is
// repositioned to the session's next slot, so a restarted daemon resumes
// bit-for-bit where the previous process stopped.
func New(cfg Config) (*Daemon, error) {
	if cfg.Session == nil {
		return nil, errors.New("serve: nil session")
	}
	if cfg.Source == nil {
		return nil, errors.New("serve: nil source")
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 24
	}
	d := &Daemon{cfg: cfg, sess: cfg.Session}
	if cfg.CheckpointPath != "" {
		data, err := os.ReadFile(cfg.CheckpointPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// Fresh start; the first periodic write creates the file.
		case err != nil:
			return nil, fmt.Errorf("serve: read checkpoint: %w", err)
		default:
			if err := d.sess.Restore(data); err != nil {
				return nil, fmt.Errorf("serve: restore checkpoint %s: %w", cfg.CheckpointPath, err)
			}
			if err := cfg.Source.Seek(d.sess.Slot()); err != nil {
				return nil, err
			}
			d.resumed = true
			d.logf("resumed from %s at slot %d/%d",
				cfg.CheckpointPath, d.sess.Slot(), d.sess.Horizon())
		}
	}
	return d, nil
}

// Resumed reports whether New restored the session from an existing
// checkpoint file.
func (d *Daemon) Resumed() bool { return d.resumed }

// Session returns the driven session (the daemon's monitoring endpoints
// read it under the daemon's lock; external readers must not race Run).
func (d *Daemon) Session() *engine.Session { return d.sess }

// Checkpoints returns the number of checkpoint files written so far.
func (d *Daemon) Checkpoints() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.checkpoints
}

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// Run executes the ingest loop until the source drains (io.EOF), the
// session's horizon is exhausted, or ctx is cancelled — SIGTERM handling
// belongs to the caller, which cancels ctx. On every exit path with
// checkpointing enabled, a final checkpoint is written so the next
// process resumes exactly one slot boundary behind the shutdown.
func (d *Daemon) Run(ctx context.Context) error {
	for !d.sess.Done() {
		if d.cfg.Interval > 0 {
			select {
			case <-ctx.Done():
				return d.shutdown(ctx.Err())
			case <-time.After(d.cfg.Interval):
			}
		} else if err := ctx.Err(); err != nil {
			return d.shutdown(err)
		}

		obs, err := d.cfg.Source.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return d.shutdown(err)
		}
		if obs.Slot != d.sess.Slot() {
			return d.shutdown(fmt.Errorf(
				"serve: source produced slot %d, session expects %d", obs.Slot, d.sess.Slot()))
		}

		d.mu.Lock()
		_, err = d.sess.Step(obs.Input)
		if err == nil {
			_, err = d.sess.Commit()
		}
		slot := d.sess.Slot()
		d.mu.Unlock()
		if err != nil {
			return d.shutdown(err)
		}

		if d.cfg.CheckpointPath != "" && slot%d.cfg.CheckpointEvery == 0 {
			if err := d.writeCheckpoint(); err != nil {
				return err
			}
		}
	}
	return d.shutdown(nil)
}

// shutdown writes the final checkpoint (when enabled) and folds any
// checkpoint failure into the loop's own exit error.
func (d *Daemon) shutdown(cause error) error {
	if d.cfg.CheckpointPath != "" {
		if err := d.writeCheckpoint(); err != nil && cause == nil {
			cause = err
		}
	}
	return cause
}

// writeCheckpoint snapshots the session and replaces the checkpoint file
// atomically (write to a temp file in the same directory, fsync, rename)
// so a crash mid-write never corrupts the recovery point.
func (d *Daemon) writeCheckpoint() error {
	d.mu.Lock()
	data, err := d.sess.Snapshot()
	d.mu.Unlock()
	if err != nil {
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	dir := filepath.Dir(d.cfg.CheckpointPath)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("serve: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.cfg.CheckpointPath); err != nil {
		return fmt.Errorf("serve: publish checkpoint: %w", err)
	}
	d.mu.Lock()
	d.checkpoints++
	n := d.checkpoints
	d.mu.Unlock()
	d.logf("checkpoint %d written at slot %d", n, d.sess.Slot())
	return nil
}
