package smartdpss_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	dpss "github.com/smartdpss/smartdpss"
)

func testTraces(t *testing.T, days int) *dpss.Traces {
	t.Helper()
	tc := dpss.DefaultTraceConfig()
	tc.Days = days
	traces, err := dpss.GenerateTraces(tc)
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

func TestGenerateTracesDefaults(t *testing.T) {
	traces := testTraces(t, 31)
	if traces.Horizon() != 31*24 {
		t.Fatalf("horizon = %d, want %d", traces.Horizon(), 31*24)
	}
	pen := traces.RenewablePenetration()
	if pen < 0.05 || pen > 0.5 {
		t.Errorf("default penetration = %g, want a visible solar share", pen)
	}
	if traces.DemandStdDev() <= 0 {
		t.Error("demand std must be positive")
	}
}

func TestGenerateTracesRejectsBadConfig(t *testing.T) {
	tc := dpss.DefaultTraceConfig()
	tc.Days = 0
	if _, err := dpss.GenerateTraces(tc); err == nil {
		t.Fatal("zero days accepted")
	}
}

func TestSimulateAllPolicies(t *testing.T) {
	traces := testTraces(t, 3)
	opts := dpss.DefaultOptions()
	opts.T = 12 // keep the horizon LP small
	for _, pol := range []dpss.Policy{
		dpss.PolicySmartDPSS,
		dpss.PolicyImpatient,
		dpss.PolicyOfflineOptimal,
		dpss.PolicyOfflineHorizon,
	} {
		t.Run(string(pol), func(t *testing.T) {
			rep, err := dpss.Simulate(pol, opts, traces)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Slots != 3*24 {
				t.Errorf("slots = %d", rep.Slots)
			}
			if rep.TotalCostUSD <= 0 {
				t.Error("cost must be positive")
			}
			if rep.UnservedMWh > 1e-6 {
				t.Errorf("unserved = %g", rep.UnservedMWh)
			}
		})
	}
}

func TestSimulateUnknownPolicy(t *testing.T) {
	traces := testTraces(t, 1)
	if _, err := dpss.Simulate(dpss.Policy("nope"), dpss.DefaultOptions(), traces); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSimulateNilTraces(t *testing.T) {
	if _, err := dpss.Simulate(dpss.PolicySmartDPSS, dpss.DefaultOptions(), nil); err == nil {
		t.Fatal("nil traces accepted")
	}
}

func TestSimulateCostOrdering(t *testing.T) {
	traces := testTraces(t, 14)
	opts := dpss.DefaultOptions()

	smart, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	impatient, err := dpss.Simulate(dpss.PolicyImpatient, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := dpss.Simulate(dpss.PolicyOfflineOptimal, opts, traces)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline ordering (Fig. 6(a)).
	if !(offline.TotalCostUSD < smart.TotalCostUSD) {
		t.Errorf("offline $%.2f not below SmartDPSS $%.2f",
			offline.TotalCostUSD, smart.TotalCostUSD)
	}
	if !(smart.TotalCostUSD < impatient.TotalCostUSD) {
		t.Errorf("SmartDPSS $%.2f not below Impatient $%.2f",
			smart.TotalCostUSD, impatient.TotalCostUSD)
	}
	// And the delay ordering.
	if impatient.MeanDelaySlots > smart.MeanDelaySlots {
		t.Errorf("Impatient delay %.2f above SmartDPSS %.2f",
			impatient.MeanDelaySlots, smart.MeanDelaySlots)
	}
}

func TestObservationNoiseOption(t *testing.T) {
	traces := testTraces(t, 7)
	clean := dpss.DefaultOptions()
	noisy := clean
	noisy.ObservationNoise = 0.5
	noisy.NoiseSeed = 42

	cleanRep, err := dpss.Simulate(dpss.PolicySmartDPSS, clean, traces)
	if err != nil {
		t.Fatal(err)
	}
	noisyRep, err := dpss.Simulate(dpss.PolicySmartDPSS, noisy, traces)
	if err != nil {
		t.Fatal(err)
	}
	if cleanRep.TotalCostUSD == noisyRep.TotalCostUSD {
		t.Error("±50% observation noise had no effect")
	}
	// Robustness: the noisy run stays within a moderate band (Fig. 9).
	rel := math.Abs(noisyRep.TotalCostUSD-cleanRep.TotalCostUSD) / cleanRep.TotalCostUSD
	if rel > 0.25 {
		t.Errorf("noisy cost deviates %.1f%%, want < 25%%", 100*rel)
	}
}

func TestObservationNoiseValidation(t *testing.T) {
	traces := testTraces(t, 1)
	opts := dpss.DefaultOptions()
	opts.ObservationNoise = 1.5
	if _, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, traces); err == nil {
		t.Fatal("noise fraction >= 1 accepted")
	}
}

func TestScaleSystemAndBatteryReference(t *testing.T) {
	traces := testTraces(t, 7)
	scaled := traces.Clone().ScaleSystem(2)

	opts := dpss.DefaultOptions()
	opts.PeakMW = 4.0
	opts.BatteryReferenceMW = 2.0
	rep, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, scaled)
	if err != nil {
		t.Fatal(err)
	}
	base, err := dpss.Simulate(dpss.PolicySmartDPSS, dpss.DefaultOptions(), traces)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rep.TotalCostUSD / base.TotalCostUSD
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("2x system cost ratio = %.2f, want near-linear", ratio)
	}
}

func TestSetPenetrationEffect(t *testing.T) {
	lowPen := testTraces(t, 7)
	if err := lowPen.SetPenetration(0.1); err != nil {
		t.Fatal(err)
	}
	highPen := testTraces(t, 7)
	if err := highPen.SetPenetration(0.8); err != nil {
		t.Fatal(err)
	}
	opts := dpss.DefaultOptions()
	low, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, lowPen)
	if err != nil {
		t.Fatal(err)
	}
	high, err := dpss.Simulate(dpss.PolicySmartDPSS, opts, highPen)
	if err != nil {
		t.Fatal(err)
	}
	if high.TotalCostUSD >= low.TotalCostUSD {
		t.Errorf("80%% penetration cost $%.2f not below 10%% cost $%.2f",
			high.TotalCostUSD, low.TotalCostUSD)
	}
}

func TestBounds(t *testing.T) {
	opts := dpss.DefaultOptions()
	b := dpss.Bounds(opts)
	if b.QMax <= 0 || b.YMax <= 0 || b.UMax <= 0 || b.LambdaMax <= 0 {
		t.Errorf("bounds not positive: %+v", b)
	}
	if math.Abs(b.UMax-(b.QMax+b.YMax-opts.V*opts.PmaxUSD/float64(opts.T))) > 1e-9 {
		t.Errorf("UMax inconsistent with QMax/YMax: %+v", b)
	}
	big := opts
	big.V = 5
	if dpss.Bounds(big).LambdaMax <= b.LambdaMax {
		t.Error("LambdaMax must grow with V")
	}
}

func TestTraceCSVExport(t *testing.T) {
	traces := testTraces(t, 2)
	var buf bytes.Buffer
	if err := traces.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2*24+1 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestTraceStatisticsOrder(t *testing.T) {
	traces := testTraces(t, 2)
	stats, err := dpss.TraceStatistics(traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 5 {
		t.Fatalf("stats = %d, want 5", len(stats))
	}
	if stats[4].Mean <= stats[3].Mean {
		t.Error("real-time price mean must exceed long-term mean")
	}
	if _, err := dpss.TraceStatistics(nil); err == nil {
		t.Error("nil traces accepted")
	}
}

func TestDeterministicSimulation(t *testing.T) {
	a, err := dpss.Simulate(dpss.PolicySmartDPSS, dpss.DefaultOptions(), testTraces(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := dpss.Simulate(dpss.PolicySmartDPSS, dpss.DefaultOptions(), testTraces(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCostUSD != b.TotalCostUSD || a.MeanDelaySlots != b.MeanDelaySlots {
		t.Error("simulation is not deterministic")
	}
}

func TestSeasonalTraces(t *testing.T) {
	winter := dpss.DefaultTraceConfig()
	winter.Days = 7
	wTraces, err := dpss.GenerateTraces(winter)
	if err != nil {
		t.Fatal(err)
	}
	summer := winter
	summer.StartDayOfYear = 172
	sTraces, err := dpss.GenerateTraces(summer)
	if err != nil {
		t.Fatal(err)
	}
	if sTraces.RenewablePenetration() <= wTraces.RenewablePenetration() {
		t.Errorf("summer penetration %.3f not above winter %.3f",
			sTraces.RenewablePenetration(), wTraces.RenewablePenetration())
	}
}
